#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <thread>

#include "common/failpoint.h"
#include "common/flight_recorder.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "server/facade_exec.h"

namespace fo2dt {

namespace {

constexpr int kPollIntervalMs = 100;

/// Process-wide server counters mirrored into the MetricsRegistry so flight
/// recorder bundles captured inside the daemon include the server's state.
/// Globals (not per-instance) because the registry collect callback must
/// outlive any one SolveServer.
struct GlobalServerCounters {
  // atomic: independent relaxed counters; cross-field consistency is not
  // promised, a metrics snapshot may tear across fields by design.
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> worker_faults{0};
  std::atomic<uint64_t> watchdog_kills{0};
  std::atomic<uint64_t> disconnect_cancels{0};
  std::atomic<uint64_t> queue_depth_peak{0};
};

GlobalServerCounters& GCounters() {
  static GlobalServerCounters* counters = new GlobalServerCounters();
  return *counters;
}

const MetricsSourceRegistrar kServerMetricsSource(
    "server",
    [](MetricsSnapshot* snap) {
      GlobalServerCounters& c = GCounters();
      snap->Set(names::kMetricServerAccepted,
                static_cast<double>(c.accepted.load()));
      snap->Set(names::kMetricServerRejectedOverload,
                static_cast<double>(c.rejected.load()));
      snap->Set(names::kMetricServerDegraded,
                static_cast<double>(c.degraded.load()));
      snap->Set(names::kMetricServerCompleted,
                static_cast<double>(c.completed.load()));
      snap->Set(names::kMetricServerWorkerFaults,
                static_cast<double>(c.worker_faults.load()));
      snap->Set(names::kMetricServerWatchdogKills,
                static_cast<double>(c.watchdog_kills.load()));
      snap->Set(names::kMetricServerDisconnectCancels,
                static_cast<double>(c.disconnect_cancels.load()));
      snap->Set(names::kMetricServerQueueDepthPeak,
                static_cast<double>(c.queue_depth_peak.load()));
    },
    [] {
      GlobalServerCounters& c = GCounters();
      c.accepted = 0;
      c.rejected = 0;
      c.degraded = 0;
      c.completed = 0;
      c.worker_faults = 0;
      c.watchdog_kills = 0;
      c.disconnect_cancels = 0;
      c.queue_depth_peak = 0;
    });

void MaxIntoAtomic(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  // fo2dt-lint: allow(no-checkpoint, CAS retry loop terminates in a bounded number of steps)
  while (cur < value && !slot->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

/// Process-wide latency/size histograms (the registry's hist.* keys). Same
/// global-lifetime rationale as GlobalServerCounters. Registration happens
/// on first access — before the first sample — so the `metrics` op exposes
/// all four series from daemon start, not from first traffic.
struct ServerHistograms {
  Histogram wire_ms{names::kMetricHistWireMs};
  Histogram queue_wait_ms{names::kMetricHistQueueWaitMs};
  Histogram solve_wall_ms{names::kMetricHistSolveWallMs};
  Histogram solve_mem_bytes{names::kMetricHistSolveMemBytes};
};

ServerHistograms& GHistograms() {
  static ServerHistograms* histograms = [] {
    auto* h = new ServerHistograms();
    MetricsRegistry& registry = MetricsRegistry::Instance();
    registry.RegisterHistogram(&h->wire_ms);
    registry.RegisterHistogram(&h->queue_wait_ms);
    registry.RegisterHistogram(&h->solve_wall_ms);
    registry.RegisterHistogram(&h->solve_mem_bytes);
    return h;
  }();
  return *histograms;
}

/// Server-minted correlation id for a solve request that carried none. The
/// pid disambiguates daemons sharing a query log; the counter makes the id
/// unique within this process.
std::string MintRequestId() {
  // atomic: relaxed ticket counter; uniqueness is all that matters.
  static std::atomic<uint64_t> next{0};
  return StringFormat(
      "fo2dtd-%llu-%llu", static_cast<unsigned long long>(::getpid()),
      static_cast<unsigned long long>(
          next.fetch_add(1, std::memory_order_relaxed)));
}

uint64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// "hist.wire_ms" → "fo2dt_hist_wire_ms": exposition name mangling.
std::string PromName(const std::string& key) {
  std::string out = "fo2dt_";
  for (char c : key) out += c == '.' ? '_' : c;
  return out;
}

/// Appends one histogram as Prometheus-style `_bucket`/`_sum`/`_count`
/// series. \p label is one pre-escaped `key="value"` pair or empty. Bucket
/// lines are cumulative and stop at the highest non-empty bucket (then
/// `+Inf`), so 64 fixed buckets don't bloat every scrape.
void AppendHistogramText(std::string* out, const std::string& prom,
                         const std::string& label,
                         const HistogramSnapshot& hs) {
  size_t last = 0;
  for (size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    if (hs.buckets[i] != 0) last = i;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= last; ++i) {
    cumulative += hs.buckets[i];
    *out += StringFormat(
        "%s_bucket{%s%sle=\"%llu\"} %llu\n", prom.c_str(), label.c_str(),
        label.empty() ? "" : ",",
        static_cast<unsigned long long>(HistogramSnapshot::BucketUpperBound(i)),
        static_cast<unsigned long long>(cumulative));
  }
  *out += StringFormat("%s_bucket{%s%sle=\"+Inf\"} %llu\n", prom.c_str(),
                       label.c_str(), label.empty() ? "" : ",",
                       static_cast<unsigned long long>(hs.count));
  const std::string braced = label.empty() ? "" : "{" + label + "}";
  *out += StringFormat("%s_sum%s %llu\n", prom.c_str(), braced.c_str(),
                       static_cast<unsigned long long>(hs.sum));
  *out += StringFormat("%s_count%s %llu\n", prom.c_str(), braced.c_str(),
                       static_cast<unsigned long long>(hs.count));
}

/// One full send of \p data on \p fd. MSG_NOSIGNAL: a client that hung up
/// mid-response must not SIGPIPE the daemon.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  // fo2dt-lint: allow(no-checkpoint, send loop bounded by response size)
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

SolveServer::SolveServer(SolveServerOptions options)
    : options_(std::move(options)),
      admission_(options_.admission, options_.default_deadline_ms),
      lifecycle_token_(CancellationToken::Create()),
      accept_token_(CancellationToken::Create()) {}

SolveServer::~SolveServer() { Shutdown(); }

Status SolveServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument("server needs a socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(StringFormat(
        "socket path '%s' too long for AF_UNIX",
        options_.socket_path.c_str()));
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StringFormat("socket(): %s", std::strerror(errno)));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a crash
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Internal(StringFormat(
        "bind('%s'): %s", options_.socket_path.c_str(), std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status st = Status::Internal(
        StringFormat("listen(): %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  started_ = true;
  slots_.clear();
  for (uint64_t i = 0; i < options_.num_workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (uint64_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SolveServer::AcceptLoop() {
  pollfd pfd{};
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (true) {
    if (accept_token_.IsCancelled()) return;
    int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the token
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    Status injected = Status::OK();
    FO2DT_FAILPOINT(names::kFpServerAcceptFault, &injected);
    if (!injected.ok()) {
      // An injected accept fault loses this connection but must never take
      // the loop down — the daemon's availability contract.
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->token = lifecycle_token_.Child();
    {
      ScopedRankedLock lock(conns_mu_);
      conns_.push_back(conn);
      // Assigned under conns_mu_: the reader's self-reap moves this handle
      // out under the same mutex, so it can never race the assignment.
      conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    }
  }
}

void SolveServer::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  pollfd pfd{};
  pfd.fd = conn->fd;
  pfd.events = POLLIN;
  while (true) {
    if (conn->token.IsCancelled()) break;
    int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > options_.max_request_line_bytes &&
        buffer.find('\n') == std::string::npos) {
      ServerResponse resp;
      resp.status = "ERROR";
      resp.detail = StringFormat(
          "request line exceeds %llu bytes",
          static_cast<unsigned long long>(options_.max_request_line_bytes));
      SendResponse(conn, resp);
      break;
    }
    while (true) {
      size_t nl = buffer.find('\n');
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      Result<ServerRequest> req = ParseRequestLine(line);
      if (!req.ok()) {
        ServerResponse resp;
        resp.status = "ERROR";
        resp.detail = req.status().message();
        SendResponse(conn, resp);
        continue;
      }
      Dispatch(conn, std::move(*req));
    }
  }
  // Disconnect cancels this connection's queued and in-flight solves; the
  // workers drop (and count) each cancelled response as they hit it.
  conn->token.RequestCancel();
  {
    ScopedRankedLock lock(conn->write_mu);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  // Self-reap: a long-lived daemon must not accumulate one dead fd and one
  // finished reader thread per past client (that path ends in EMFILE). The
  // thread handle moves to dead_readers_ — joined by the watchdog sweep or
  // Shutdown — and the Connection leaves conns_; it stays alive through the
  // shared_ptr held by any still-queued WorkItems.
  {
    ScopedRankedLock lock(conns_mu_);
    if (conn->reader.joinable()) {
      dead_readers_.push_back(std::move(conn->reader));
    }
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                 conns_.end());
  }
}

void SolveServer::Dispatch(const std::shared_ptr<Connection>& conn,
                           ServerRequest req) {
  const auto received = std::chrono::steady_clock::now();
  ServerResponse resp;
  resp.id = req.id;
  if (req.op == "ping") {
    resp.status = "OK";
    resp.detail = "pong";
    SendResponse(conn, resp);
    return;
  }
  if (req.op == "stats") {
    resp.status = "OK";
    ServerStats s = stats();
    resp.queue_depth = s.admission.queue_depth;
    resp.metrics[names::kMetricServerAccepted] = s.admission.accepted;
    resp.metrics[names::kMetricServerRejectedOverload] = s.admission.rejected;
    resp.metrics[names::kMetricServerDegraded] = s.admission.degraded;
    resp.metrics[names::kMetricServerQueueDepthPeak] =
        s.admission.queue_depth_peak;
    resp.metrics[names::kMetricServerCompleted] = s.completed;
    resp.metrics[names::kMetricServerWorkerFaults] = s.worker_faults;
    resp.metrics[names::kMetricServerWatchdogKills] = s.watchdog_kills;
    resp.metrics[names::kMetricServerDisconnectCancels] = s.disconnect_cancels;
    SendResponse(conn, resp);
    return;
  }
  if (req.op == "metrics") {
    resp.status = "OK";
    resp.queue_depth = admission_.stats().queue_depth;
    resp.exposition = BuildExposition();
    SendResponse(conn, resp);
    return;
  }
  if (req.op != "solve") {
    resp.status = "ERROR";
    resp.detail = StringFormat("unknown op '%s'", JsonEscape(req.op).c_str());
    SendResponse(conn, resp);
    return;
  }

  // Every solve answer carries a correlation id — the client's, or minted
  // here — and every solve answer (rejections and reader-side errors
  // included) lands one sample in hist.wire_ms and the tenant's latency
  // histogram, so "solve responses sent" equals the histogram count by
  // construction. ping/stats/metrics stay unrecorded: the observer must not
  // perturb the latency distribution it reports.
  resp.request_id =
      req.request_id.empty() ? MintRequestId() : std::move(req.request_id);
  const auto answer_from_reader = [&] {
    const uint64_t wire_ms = ElapsedMs(received);
    GHistograms().wire_ms.Record(wire_ms);
    admission_.RecordLatency(req.tenant, wire_ms);
    SendResponse(conn, resp);
  };

  const char* facade = LookupFacadeName(req.facade);
  if (facade == nullptr || !FacadeIsExecutable(req.facade)) {
    resp.status = "ERROR";
    resp.detail = StringFormat("unknown or non-executable facade '%s'",
                               JsonEscape(req.facade).c_str());
    answer_from_reader();
    return;
  }
  if (req.body.empty()) {
    resp.status = "ERROR";
    resp.detail = "solve request has an empty body";
    answer_from_reader();
    return;
  }

  RequestedBudgets requested;
  requested.deadline_ms = req.deadline_ms;
  requested.max_bytes = req.max_bytes;
  requested.max_effort = req.max_effort;
  AdmitDecision decision = admission_.Admit(req.tenant, requested);
  if (decision.action == AdmitAction::kReject) {
    GCounters().rejected.fetch_add(1, std::memory_order_relaxed);
    resp.status = "OVERLOADED";
    resp.detail = decision.detail;
    resp.queue_depth = decision.queue_depth;
    answer_from_reader();
    return;
  }
  GCounters().accepted.fetch_add(1, std::memory_order_relaxed);
  if (decision.action != AdmitAction::kAccept) {
    GCounters().degraded.fetch_add(1, std::memory_order_relaxed);
  }
  MaxIntoAtomic(&GCounters().queue_depth_peak, decision.queue_depth + 1);

  WorkItem item;
  item.conn = conn;
  item.id = req.id;
  item.request_id = resp.request_id;
  item.received = received;
  item.tenant = req.tenant;
  item.facade = facade;
  item.body = std::move(req.body);
  item.deadline_ms = decision.deadline_ms;
  item.max_bytes = decision.max_bytes;
  item.max_effort = decision.max_effort;
  item.queue_depth = decision.queue_depth;
  item.degraded = decision.action != AdmitAction::kAccept;
  item.token = conn->token.Child();
  conn->pending.fetch_add(1, std::memory_order_relaxed);
  bool enqueued = false;
  {
    // draining_ flips under queue_mu_ (Shutdown step 2), so a solve either
    // lands in the queue before the drain barrier — workers are then
    // guaranteed to run it — or is rejected below. Never silently dropped.
    ScopedRankedLock lock(queue_mu_);
    if (!draining_) {
      queue_.push_back(std::move(item));
      enqueued = true;
    }
  }
  if (!enqueued) {
    // Shutdown already closed the queue and the workers may be gone: hand
    // the admission reservations back and answer with a structured
    // rejection instead of stranding the client.
    conn->pending.fetch_sub(1, std::memory_order_relaxed);
    admission_.OnAbandon(req.tenant);
    GCounters().rejected.fetch_add(1, std::memory_order_relaxed);
    resp.status = "OVERLOADED";
    resp.detail = "server draining";
    resp.queue_depth = decision.queue_depth;
    answer_from_reader();
    return;
  }
  queue_cv_.notify_one();
}

void SolveServer::WorkerLoop(size_t worker_index) {
  WorkerSlot* slot = slots_[worker_index].get();
  while (true) {
    WorkItem item;
    {
      ScopedRankedLock lock(queue_mu_);
      queue_cv_.wait(lock.native(),
                     [this]() FO2DT_REQUIRES(queue_mu_) {
                       return draining_ || !queue_.empty();
                     });
      if (queue_.empty()) {
        if (draining_) return;
        continue;  // spurious wake between drain phases
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    admission_.OnDequeue();
    if (item.token.IsCancelled()) {
      // Client went away while the item was queued (only a disconnect can
      // cancel a not-yet-running item): drop it, release the reservations,
      // and count the cancellation here — where it actually happened —
      // rather than from a racy pre-cancel pending snapshot.
      admission_.OnFinish(item.tenant);
      item.conn->pending.fetch_sub(1, std::memory_order_relaxed);
      disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
      GCounters().disconnect_cancels.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    RunSolve(std::move(item), slot);
  }
}

void SolveServer::RunSolve(WorkItem item, WorkerSlot* slot) {
  GHistograms().queue_wait_ms.Record(ElapsedMs(item.received));
  {
    ScopedRankedLock lock(slot->mu);
    slot->busy = true;
    slot->killed = false;
    slot->start = std::chrono::steady_clock::now();
    slot->deadline_ms = item.deadline_ms;
    slot->token = item.token;
  }

  ExecutionContext exec;
  exec.SetDeadlineAfter(std::chrono::milliseconds(item.deadline_ms));
  exec.set_token(item.token);
  exec.set_request_id(item.request_id);
  if (item.max_bytes != 0) exec.set_max_bytes(item.max_bytes);

  ServerResponse resp;
  resp.id = item.id;
  resp.request_id = item.request_id;
  resp.queue_depth = item.queue_depth;
  resp.degraded = item.degraded;

  // The server-level recorder wraps the whole worker execution: a worker
  // fault or watchdog cancel still leaves a query-log record and (policy
  // permitting) a replayable bundle, because the facade body IS the replay
  // input.
  SolveRecorder rec(item.facade, &exec);
  if (rec.active()) {
    std::string joined;
    for (const std::string& line : item.body) joined += line + "\n";
    rec.SetInput(joined);
    rec.SetReplayInput(joined);
    rec.AddBudget("deadline_ms", item.deadline_ms);
    if (item.max_effort != 0) rec.AddBudget("max_effort", item.max_effort);
  }

  const auto solve_start = std::chrono::steady_clock::now();
  Result<SolveOutcome> outcome = [&]() -> Result<SolveOutcome> {
    Status injected = Status::OK();
    FO2DT_FAILPOINT(names::kFpServerWorkerCrash, &injected);
    if (!injected.ok()) {
      worker_faults_.fetch_add(1, std::memory_order_relaxed);
      GCounters().worker_faults.fetch_add(1, std::memory_order_relaxed);
      return injected;
    }
    FacadeBudgetCaps caps;
    caps.max_effort = item.max_effort;
    return ExecuteFacadeBody(item.facade, item.body, &exec, caps);
  }();
  GHistograms().solve_wall_ms.Record(ElapsedMs(solve_start));
  GHistograms().solve_mem_bytes.Record(exec.MemoryHighWater());

  {
    ScopedRankedLock lock(slot->mu);
    slot->busy = false;
    slot->token = CancellationToken();
  }
  admission_.OnFinish(item.tenant);
  item.conn->pending.fetch_sub(1, std::memory_order_relaxed);

  if (outcome.ok()) {
    resp.status = "OK";
    resp.verdict = outcome->verdict;
    resp.method = outcome->method;
    resp.steps = outcome->steps;
    if (outcome->stop.stopped()) {
      resp.stop_kind = StopKindToString(outcome->stop.kind);
      resp.stop_module = outcome->stop.module;
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    GCounters().completed.fetch_add(1, std::memory_order_relaxed);
    rec.Finish(*outcome);
  } else {
    // Body parse errors, injected worker faults, memory-budget errors: the
    // request fails, the daemon does not.
    resp.status = "ERROR";
    resp.detail = outcome.status().message();
    SolveOutcome failed;
    failed.verdict = std::string("ERROR:") +
                     StatusCodeToString(outcome.status().code());
    if (const StopReason* reason = outcome.status().stop_reason()) {
      failed.stop = *reason;
      resp.stop_kind = StopKindToString(reason->kind);
      resp.stop_module = reason->module;
    }
    resp.verdict = failed.verdict;
    rec.Finish(std::move(failed));
  }
  if (item.conn->token.IsCancelled()) {
    // The client hung up while this solve ran: nobody is listening, so the
    // response is dropped and counted here, where the drop actually
    // happens. This is the only suppression path — a watchdog or deadline
    // kill on a live connection still answers ERROR/UNKNOWN.
    disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
    GCounters().disconnect_cancels.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Wire latency covers receipt → response write; recorded only when the
    // response is actually sent, keeping hist.wire_ms's count equal to the
    // number of solve responses clients can observe.
    const uint64_t wire_ms = ElapsedMs(item.received);
    GHistograms().wire_ms.Record(wire_ms);
    admission_.RecordLatency(item.tenant, wire_ms);
    SendResponse(item.conn, resp);
  }
}

void SolveServer::ReapDeadReaders() {
  std::vector<std::thread> dead;
  {
    ScopedRankedLock lock(conns_mu_);
    dead.swap(dead_readers_);
  }
  // Joined outside conns_mu_: a reader pushes its own handle just before
  // returning, so these joins complete immediately (or nearly so).
  for (std::thread& t : dead) {
    if (t.joinable()) t.join();
  }
}

void SolveServer::WatchdogLoop() {
  while (true) {
    if (lifecycle_token_.IsCancelled()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollIntervalMs));
    ReapDeadReaders();
    auto now = std::chrono::steady_clock::now();
    for (const std::unique_ptr<WorkerSlot>& slot : slots_) {
      ScopedRankedLock lock(slot->mu);
      if (!slot->busy || slot->killed) continue;
      auto limit = slot->start +
                   std::chrono::milliseconds(slot->deadline_ms +
                                             options_.watchdog_grace_ms);
      if (now < limit) continue;
      // A solve past deadline + grace is stuck in a stretch of work that
      // is not polling its checkpoint budget. Cancel it; the worker thread
      // fails that one request and picks up the next.
      slot->token.RequestCancel();
      slot->killed = true;
      watchdog_kills_.fetch_add(1, std::memory_order_relaxed);
      GCounters().watchdog_kills.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void SolveServer::SendResponse(const std::shared_ptr<Connection>& conn,
                               const ServerResponse& resp) {
  ScopedRankedLock lock(conn->write_mu);
  if (conn->fd >= 0) (void)SendAll(conn->fd, resp.ToJsonLine());
}

void SolveServer::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;

  // 1. Stop accepting. Closing the listener makes poll() fail fast.
  accept_token_.RequestCancel();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Close the queue: draining_ flips under queue_mu_, so every solve was
  // either enqueued before this barrier (the workers below are guaranteed
  // to run it) or is rejected by Dispatch with "server draining" from now
  // on. Readers stay up through the drain so finished solves still answer.
  {
    ScopedRankedLock lock(queue_mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();

  // 3. Failpoint hook: stretch the drain window (admission is already
  // closed) so crash-safety tests can interrupt a drain in progress.
  bool slow = false;
  FO2DT_FAILPOINT(names::kFpServerSlowDrain, &slow);
  if (slow) std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // 4. Drain: workers finish the queue (each item bounded by its own
  // deadline plus the watchdog), then exit.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // 5. Watchdog is only needed while workers run.
  lifecycle_token_.RequestCancel();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  // 6. Tear down the connections still live (disconnected clients already
  // self-reaped into dead_readers_): the lifecycle cancel stops their
  // readers, shutdown() unblocks any reader mid-recv.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    ScopedRankedLock lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    {
      ScopedRankedLock lock(conn->write_mu);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    std::thread reader;
    {
      // The reader may be self-reaping concurrently; the thread-handle
      // handoff is serialized on conns_mu_ (exactly one side moves it).
      ScopedRankedLock lock(conns_mu_);
      if (conn->reader.joinable()) reader = std::move(conn->reader);
    }
    if (reader.joinable()) reader.join();
    {
      ScopedRankedLock lock(conn->write_mu);
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
  }
  ReapDeadReaders();
  ::unlink(options_.socket_path.c_str());
}

uint64_t SolveServer::WorkersBusy() const {
  uint64_t busy = 0;
  for (const std::unique_ptr<WorkerSlot>& slot : slots_) {
    ScopedRankedLock lock(slot->mu);
    if (slot->busy) ++busy;
  }
  return busy;
}

std::string SolveServer::BuildExposition() const {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  std::string out;

  // 1. Flat registry keys. The histogram-derived .count/.sum keys are
  // skipped (the histogram section below owns `_count`/`_sum`); the derived
  // percentiles pass through, so a scraper (fo2dt_top) reads p50/p95/p99
  // without redoing bucket math.
  MetricsSnapshot snap = registry.Snapshot();
  for (const auto& kv : snap.values) {
    if (kv.first.rfind("hist.", 0) == 0) {
      const size_t dot = kv.first.rfind('.');
      const std::string suffix = kv.first.substr(dot + 1);
      if (suffix == "count" || suffix == "sum") continue;
    }
    out += StringFormat("%s %.17g\n", PromName(kv.first).c_str(), kv.second);
  }

  // 2. Live gauges the counter registry doesn't carry.
  out += StringFormat("# TYPE %s gauge\n%s %llu\n",
                      PromName(names::kMetricServerQueueDepth).c_str(),
                      PromName(names::kMetricServerQueueDepth).c_str(),
                      static_cast<unsigned long long>(
                          admission_.stats().queue_depth));
  out += StringFormat("# TYPE %s gauge\n%s %llu\n",
                      PromName(names::kMetricServerWorkersBusy).c_str(),
                      PromName(names::kMetricServerWorkersBusy).c_str(),
                      static_cast<unsigned long long>(WorkersBusy()));

  // 3. The four server histograms, full bucket resolution.
  for (const HistogramSnapshot& hs : registry.HistogramSnapshots()) {
    const std::string prom = PromName(hs.name);
    out += StringFormat("# TYPE %s histogram\n", prom.c_str());
    AppendHistogramText(&out, prom, "", hs);
  }

  // 4. Per-tenant ladder counters + latency, `tenant` label per series.
  const std::vector<TenantMetrics> tenants = admission_.TenantSnapshot();
  if (!tenants.empty()) {
    out += "# TYPE fo2dt_tenant_requests_total counter\n";
    for (const TenantMetrics& t : tenants) {
      const std::string esc = JsonEscape(t.tenant);
      const struct {
        const char* outcome;
        uint64_t value;
      } rungs[] = {{"admitted", t.admitted},
                   {"degraded_light", t.degraded_light},
                   {"degraded_heavy", t.degraded_heavy},
                   {"rejected", t.rejected}};
      for (const auto& rung : rungs) {
        out += StringFormat(
            "fo2dt_tenant_requests_total{tenant=\"%s\",outcome=\"%s\"} %llu\n",
            esc.c_str(), rung.outcome,
            static_cast<unsigned long long>(rung.value));
      }
    }
    const std::string tenant_prom = PromName(names::kMetricHistTenantWireMs);
    out += StringFormat("# TYPE %s histogram\n", tenant_prom.c_str());
    for (const TenantMetrics& t : tenants) {
      AppendHistogramText(
          &out, tenant_prom,
          StringFormat("tenant=\"%s\"", JsonEscape(t.tenant).c_str()),
          t.latency);
    }
  }
  return out;
}

ServerStats SolveServer::stats() const {
  ServerStats out;
  out.completed = completed_.load(std::memory_order_relaxed);
  out.worker_faults = worker_faults_.load(std::memory_order_relaxed);
  out.watchdog_kills = watchdog_kills_.load(std::memory_order_relaxed);
  out.disconnect_cancels = disconnect_cancels_.load(std::memory_order_relaxed);
  out.admission = admission_.stats();
  return out;
}

}  // namespace fo2dt
