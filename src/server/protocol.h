/// \file protocol.h
/// \brief fo2dtd wire protocol: line-delimited flat JSON over a Unix domain
/// socket.
///
/// Every request is ONE line of JSON (a single flat object, no nesting) and
/// produces exactly one response line. The grammar is deliberately small so
/// hostile clients have a small attack surface; the parser rejects nested
/// objects/arrays, caps string lengths at the transport's line limit, and
/// reports byte-precise positions for malformed input.
///
/// Request fields:
///   op        "solve" | "ping" | "stats" | "metrics"   (required)
///   id        opaque echo token                    (optional)
///   request_id  end-to-end correlation id          (optional; the server
///             mints one for solves when absent — see DESIGN.md §13)
///   tenant    tenant name for quota accounting     (optional, "" = anon)
///   facade    registered facade name               (solve only)
///   body      facade body lines joined with '\n'   (solve only; the
///             input.fo2dt grammar of server/facade_exec.h)
///   deadline_ms / max_bytes / max_effort           requested budgets,
///             clamped per-tenant by admission control (0 = server default)
///
/// Response fields:
///   id        echoed request id
///   request_id  correlation id (client-supplied or server-generated) on
///             every solve response; joins the wire response to the
///             query-log record and capture-bundle manifest
///   status    "OK" | "OVERLOADED" | "ERROR"
///   verdict/method/steps/stop_kind/stop_module/cache   solve outcome
///   degraded  1 when the shedding ladder shrank this request's budgets
///   queue_depth   admission queue depth observed at decision time
///   detail    human-readable explanation for OVERLOADED / ERROR
///   metrics   (stats op) flat object of server counter values
///   exposition  (metrics op) Prometheus-style text, JSON-escaped
///
/// See DESIGN.md §10 for the full protocol contract.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/query_log.h"  // JsonEscape
#include "common/status.h"

namespace fo2dt {

/// One parsed request line.
struct ServerRequest {
  std::string op;
  std::string id;
  std::string request_id;  // "" = server mints one at admission
  std::string tenant;
  std::string facade;
  std::vector<std::string> body;  // split on '\n', empty lines dropped
  uint64_t deadline_ms = 0;       // 0 = server default
  uint64_t max_bytes = 0;         // 0 = server default
  uint64_t max_effort = 0;        // 0 = body-requested budgets unclamped
};

/// One response line under construction.
struct ServerResponse {
  std::string id;
  std::string request_id;  // correlation id; set on every solve response
  std::string status;  // "OK" / "OVERLOADED" / "ERROR"
  std::string verdict;
  std::string method;
  uint64_t steps = 0;
  std::string stop_kind;
  std::string stop_module;
  std::string cache;
  std::string detail;
  uint64_t queue_depth = 0;
  bool degraded = false;
  /// Extra flat integer fields (stats op counters).
  std::map<std::string, uint64_t> metrics;
  /// Prometheus-style exposition text (metrics op only); newlines survive
  /// the wire as \n escapes inside one flat JSON string.
  std::string exposition;

  /// Serializes as one JSON line (trailing '\n' included). Fields with
  /// default values are omitted so common responses stay short.
  std::string ToJsonLine() const;
};

/// Parses one request line. The line must be a single flat JSON object whose
/// values are strings, non-negative integers, or true/false; anything else
/// (nesting, floats, negatives, duplicate keys, trailing garbage) is a
/// kParseError whose message carries the byte offset. Unknown keys are
/// rejected — the protocol is versioned by adding ops, not by silently
/// ignoring fields a newer client thought mattered.
Result<ServerRequest> ParseRequestLine(const std::string& line);

}  // namespace fo2dt
