#include "server/admission.h"

#include <algorithm>

#include "common/strings.h"

namespace fo2dt {

namespace {

uint64_t ClampToQuota(uint64_t requested, uint64_t quota, uint64_t fallback) {
  uint64_t value = requested == 0 ? fallback : requested;
  if (quota != 0 && (value == 0 || value > quota)) value = quota;
  return value;
}

uint64_t DivideFloored(uint64_t value, uint64_t divisor, uint64_t floor) {
  if (value == 0) return 0;  // "unlimited" budgets degrade via the cap path
  return std::max(floor, value / std::max<uint64_t>(1, divisor));
}

}  // namespace

AdmissionController::TenantSlot* AdmissionController::SlotFor(
    const std::string& tenant) {
  for (const auto& slot : tenants_) {
    if (slot->tenant == tenant) return slot.get();
  }
  if (tenants_.size() >= kTenantTableSlots) return &overflow_;
  tenants_.push_back(std::make_unique<TenantSlot>(tenant));
  return tenants_.back().get();
}

AdmitDecision AdmissionController::Admit(const std::string& tenant,
                                         const RequestedBudgets& requested) {
  ScopedRankedLock lock(mu_);
  AdmitDecision decision;
  decision.queue_depth = queue_depth_;
  TenantSlot* slot = SlotFor(tenant);

  if (queue_depth_ >= config_.queue_limit) {
    decision.action = AdmitAction::kReject;
    decision.detail = StringFormat(
        "queue full (%llu/%llu)",
        static_cast<unsigned long long>(queue_depth_),
        static_cast<unsigned long long>(config_.queue_limit));
    ++stats_.rejected;
    ++slot->rejected;
    return decision;
  }
  uint64_t active = tenant_active_[tenant];
  if (config_.tenant_active_limit != 0 &&
      active >= config_.tenant_active_limit) {
    decision.action = AdmitAction::kReject;
    decision.detail = StringFormat(
        "tenant '%s' at active-request cap (%llu)", tenant.c_str(),
        static_cast<unsigned long long>(config_.tenant_active_limit));
    ++stats_.rejected;
    ++slot->rejected;
    return decision;
  }

  // Quota clamp first, then the ladder shrinks the clamped values: a tenant
  // can never ladder its way above its quota.
  decision.deadline_ms = ClampToQuota(requested.deadline_ms,
                                      config_.quota.max_deadline_ms,
                                      default_deadline_ms_);
  decision.max_bytes =
      ClampToQuota(requested.max_bytes, config_.quota.max_bytes, 0);
  decision.max_effort =
      ClampToQuota(requested.max_effort, config_.quota.max_effort, 0);

  uint64_t occupancy_pct =
      config_.queue_limit == 0 ? 0 : queue_depth_ * 100 / config_.queue_limit;
  if (occupancy_pct >= config_.degrade_heavy_pct) {
    decision.action = AdmitAction::kDegradeHeavy;
    decision.deadline_ms =
        DivideFloored(decision.deadline_ms, config_.heavy_divisor, 1);
    decision.max_effort = decision.max_effort == 0
                              ? 1024  // unlimited effort gets a hard cap
                              : DivideFloored(decision.max_effort,
                                              config_.heavy_divisor, 1);
    ++stats_.degraded;
    ++slot->degraded_heavy;
  } else if (occupancy_pct >= config_.degrade_light_pct) {
    decision.action = AdmitAction::kDegradeLight;
    decision.max_effort = decision.max_effort == 0
                              ? 65536
                              : DivideFloored(decision.max_effort,
                                              config_.light_divisor, 1);
    ++stats_.degraded;
    ++slot->degraded_light;
  } else {
    decision.action = AdmitAction::kAccept;
    ++slot->admitted;
  }
  if (decision.deadline_ms == 0) decision.deadline_ms = default_deadline_ms_;

  ++queue_depth_;
  ++tenant_active_[tenant];
  ++stats_.accepted;
  stats_.queue_depth = queue_depth_;
  stats_.queue_depth_peak = std::max(stats_.queue_depth_peak, queue_depth_);
  return decision;
}

void AdmissionController::OnDequeue() {
  ScopedRankedLock lock(mu_);
  if (queue_depth_ > 0) --queue_depth_;
  stats_.queue_depth = queue_depth_;
}

void AdmissionController::OnFinish(const std::string& tenant) {
  ScopedRankedLock lock(mu_);
  auto it = tenant_active_.find(tenant);
  if (it != tenant_active_.end() && it->second > 0) {
    if (--it->second == 0) tenant_active_.erase(it);
  }
}

void AdmissionController::OnAbandon(const std::string& tenant) {
  {
    ScopedRankedLock lock(mu_);
    if (queue_depth_ > 0) --queue_depth_;
    stats_.queue_depth = queue_depth_;
  }
  OnFinish(tenant);
}

void AdmissionController::RecordLatency(const std::string& tenant,
                                        uint64_t wire_ms) {
  ScopedRankedLock lock(mu_);
  SlotFor(tenant)->latency.Record(wire_ms);
}

AdmissionStats AdmissionController::stats() const {
  ScopedRankedLock lock(mu_);
  return stats_;
}

std::vector<TenantMetrics> AdmissionController::TenantSnapshot() const {
  ScopedRankedLock lock(mu_);
  std::vector<TenantMetrics> out;
  out.reserve(tenants_.size() + 1);
  auto snapshot_slot = [&out](const TenantSlot& slot) {
    TenantMetrics m;
    m.tenant = slot.tenant;
    m.admitted = slot.admitted;
    m.degraded_light = slot.degraded_light;
    m.degraded_heavy = slot.degraded_heavy;
    m.rejected = slot.rejected;
    m.latency = slot.latency.Snapshot();
    out.push_back(std::move(m));
  };
  for (const auto& slot : tenants_) snapshot_slot(*slot);
  HistogramSnapshot overflow_latency = overflow_.latency.Snapshot();
  if (overflow_.admitted + overflow_.degraded_light + overflow_.degraded_heavy +
          overflow_.rejected + overflow_latency.count >
      0) {
    snapshot_slot(overflow_);
  }
  return out;
}

}  // namespace fo2dt
