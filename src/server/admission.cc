#include "server/admission.h"

#include <algorithm>

#include "common/strings.h"

namespace fo2dt {

namespace {

uint64_t ClampToQuota(uint64_t requested, uint64_t quota, uint64_t fallback) {
  uint64_t value = requested == 0 ? fallback : requested;
  if (quota != 0 && (value == 0 || value > quota)) value = quota;
  return value;
}

uint64_t DivideFloored(uint64_t value, uint64_t divisor, uint64_t floor) {
  if (value == 0) return 0;  // "unlimited" budgets degrade via the cap path
  return std::max(floor, value / std::max<uint64_t>(1, divisor));
}

}  // namespace

AdmitDecision AdmissionController::Admit(const std::string& tenant,
                                         const RequestedBudgets& requested) {
  ScopedRankedLock lock(mu_);
  AdmitDecision decision;
  decision.queue_depth = queue_depth_;

  if (queue_depth_ >= config_.queue_limit) {
    decision.action = AdmitAction::kReject;
    decision.detail = StringFormat(
        "queue full (%llu/%llu)",
        static_cast<unsigned long long>(queue_depth_),
        static_cast<unsigned long long>(config_.queue_limit));
    ++stats_.rejected;
    return decision;
  }
  uint64_t active = tenant_active_[tenant];
  if (config_.tenant_active_limit != 0 &&
      active >= config_.tenant_active_limit) {
    decision.action = AdmitAction::kReject;
    decision.detail = StringFormat(
        "tenant '%s' at active-request cap (%llu)", tenant.c_str(),
        static_cast<unsigned long long>(config_.tenant_active_limit));
    ++stats_.rejected;
    return decision;
  }

  // Quota clamp first, then the ladder shrinks the clamped values: a tenant
  // can never ladder its way above its quota.
  decision.deadline_ms = ClampToQuota(requested.deadline_ms,
                                      config_.quota.max_deadline_ms,
                                      default_deadline_ms_);
  decision.max_bytes =
      ClampToQuota(requested.max_bytes, config_.quota.max_bytes, 0);
  decision.max_effort =
      ClampToQuota(requested.max_effort, config_.quota.max_effort, 0);

  uint64_t occupancy_pct =
      config_.queue_limit == 0 ? 0 : queue_depth_ * 100 / config_.queue_limit;
  if (occupancy_pct >= config_.degrade_heavy_pct) {
    decision.action = AdmitAction::kDegradeHeavy;
    decision.deadline_ms =
        DivideFloored(decision.deadline_ms, config_.heavy_divisor, 1);
    decision.max_effort = decision.max_effort == 0
                              ? 1024  // unlimited effort gets a hard cap
                              : DivideFloored(decision.max_effort,
                                              config_.heavy_divisor, 1);
    ++stats_.degraded;
  } else if (occupancy_pct >= config_.degrade_light_pct) {
    decision.action = AdmitAction::kDegradeLight;
    decision.max_effort = decision.max_effort == 0
                              ? 65536
                              : DivideFloored(decision.max_effort,
                                              config_.light_divisor, 1);
    ++stats_.degraded;
  } else {
    decision.action = AdmitAction::kAccept;
  }
  if (decision.deadline_ms == 0) decision.deadline_ms = default_deadline_ms_;

  ++queue_depth_;
  ++tenant_active_[tenant];
  ++stats_.accepted;
  stats_.queue_depth = queue_depth_;
  stats_.queue_depth_peak = std::max(stats_.queue_depth_peak, queue_depth_);
  return decision;
}

void AdmissionController::OnDequeue() {
  ScopedRankedLock lock(mu_);
  if (queue_depth_ > 0) --queue_depth_;
  stats_.queue_depth = queue_depth_;
}

void AdmissionController::OnFinish(const std::string& tenant) {
  ScopedRankedLock lock(mu_);
  auto it = tenant_active_.find(tenant);
  if (it != tenant_active_.end() && it->second > 0) {
    if (--it->second == 0) tenant_active_.erase(it);
  }
}

void AdmissionController::OnAbandon(const std::string& tenant) {
  {
    ScopedRankedLock lock(mu_);
    if (queue_depth_ > 0) --queue_depth_;
    stats_.queue_depth = queue_depth_;
  }
  OnFinish(tenant);
}

AdmissionStats AdmissionController::stats() const {
  ScopedRankedLock lock(mu_);
  return stats_;
}

}  // namespace fo2dt
