/// \file admission.h
/// \brief fo2dtd admission control: bounded queue accounting, per-tenant
/// quotas, and the graceful-degradation ladder.
///
/// AdmissionController is pure bookkeeping — no sockets, no threads of its
/// own — so the full robustness envelope (caps, ladder, rejection) is
/// unit-testable deterministically. The server calls:
///
///   Admit(tenant, requested)   at enqueue time: clamps budgets to the
///                              tenant quota, applies the shedding ladder,
///                              and reserves a queue slot (or rejects);
///   OnDequeue()                when a worker picks the item up;
///   OnFinish()                 when the solve resolves (any outcome);
///   OnAbandon(tenant)          when a queued item dies before dequeue
///                              (client disconnect) — releases both the
///                              queue slot and the tenant reservation.
///
/// The degradation ladder (DESIGN.md §10.3) shrinks work before shedding
/// it: under light pressure requests keep their deadline but lose effort
/// budget; under heavy pressure both shrink hard; only a full queue (or an
/// exhausted tenant cap) rejects. The ladder thresholds are percentages of
/// queue occupancy measured *before* this request's reservation, so the
/// decision sequence for a burst is deterministic.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/registry_names.h"

namespace fo2dt {

/// Per-tenant ceilings (0 = unlimited). Applied before the ladder.
struct TenantQuota {
  uint64_t max_deadline_ms = 0;
  uint64_t max_effort = 0;
  uint64_t max_bytes = 0;
};

struct AdmissionConfig {
  /// Queue slots shared by all tenants; a full queue rejects.
  uint64_t queue_limit = 64;
  /// Per-tenant cap on requests admitted and not yet finished (queued +
  /// in-flight). 0 = unlimited.
  uint64_t tenant_active_limit = 8;
  /// Ladder thresholds: occupancy percentage (of queue_limit) at which
  /// light / heavy degradation starts.
  uint64_t degrade_light_pct = 50;
  uint64_t degrade_heavy_pct = 75;
  /// Budget divisors applied by the two ladder rungs.
  uint64_t light_divisor = 4;
  uint64_t heavy_divisor = 16;
  /// Quota applied to every tenant (this server is multi-tenant-fair, not
  /// per-tenant-tiered; a tiered map would slot in here).
  TenantQuota quota;
};

enum class AdmitAction {
  kAccept,        // full budgets (after quota clamp)
  kDegradeLight,  // effort / light_divisor
  kDegradeHeavy,  // effort and deadline / heavy_divisor
  kReject,        // queue full or tenant cap exhausted
};

/// What the worker should actually run with.
struct AdmitDecision {
  AdmitAction action = AdmitAction::kReject;
  /// Human-readable reason, set for rejections.
  std::string detail;
  /// Queue depth observed before this request's reservation.
  uint64_t queue_depth = 0;
  /// Effective budgets after quota clamp + ladder (accept/degrade only).
  uint64_t deadline_ms = 0;
  uint64_t max_bytes = 0;
  uint64_t max_effort = 0;
};

/// Requested budgets as they arrived on the wire (0 = server default).
struct RequestedBudgets {
  uint64_t deadline_ms = 0;
  uint64_t max_bytes = 0;
  uint64_t max_effort = 0;
};

struct AdmissionStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t degraded = 0;
  uint64_t queue_depth = 0;
  uint64_t queue_depth_peak = 0;
};

/// One tenant's dimensioned view of the ladder: which rung each of its
/// requests landed on, plus its wire-latency distribution. Value-type
/// snapshot produced by AdmissionController::TenantSnapshot().
struct TenantMetrics {
  std::string tenant;
  uint64_t admitted = 0;        ///< full-budget accepts
  uint64_t degraded_light = 0;  ///< kDegradeLight admissions
  uint64_t degraded_heavy = 0;  ///< kDegradeHeavy admissions
  uint64_t rejected = 0;        ///< queue-full + tenant-cap rejections
  HistogramSnapshot latency;    ///< per-tenant wire latency, ms
};

class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config, uint64_t default_deadline_ms)
      : config_(config), default_deadline_ms_(default_deadline_ms) {}

  /// Decides this request's fate and, on accept/degrade, reserves one queue
  /// slot and one tenant-active slot. Thread-safe.
  AdmitDecision Admit(const std::string& tenant,
                      const RequestedBudgets& requested);

  /// A worker dequeued an admitted item: the queue slot frees, the tenant
  /// reservation stays until OnFinish.
  void OnDequeue();

  /// An admitted item finished solving (any outcome).
  void OnFinish(const std::string& tenant);

  /// An admitted item was dropped while still queued (client disconnect):
  /// releases both the queue slot and the tenant reservation.
  void OnAbandon(const std::string& tenant);

  /// Records one completed solve request's wire latency against its tenant
  /// (bucketed into `other` past the cardinality bound, like the counters).
  void RecordLatency(const std::string& tenant, uint64_t wire_ms);

  AdmissionStats stats() const;

  /// Per-tenant ladder counters + latency histograms, first-seen order; the
  /// `other` overflow bucket rides last when it has absorbed anything.
  std::vector<TenantMetrics> TenantSnapshot() const;

  /// Cardinality bound on distinctly-tracked tenants. A hostile or buggy
  /// client minting a fresh tenant string per request must not grow server
  /// memory without bound: tenant #kTenantTableSlots+1 and later collapse
  /// into one shared `other` slot (counters and histogram alike).
  static constexpr size_t kTenantTableSlots = 32;

 private:
  /// Per-tenant counter block. Lives behind a unique_ptr in tenants_ (the
  /// Histogram member is non-copyable and must stay address-stable).
  struct TenantSlot {
    explicit TenantSlot(std::string name) : tenant(std::move(name)) {}
    std::string tenant;
    uint64_t admitted = 0;
    uint64_t degraded_light = 0;
    uint64_t degraded_heavy = 0;
    uint64_t rejected = 0;
    Histogram latency{names::kMetricHistTenantWireMs};
  };

  /// The tenant's slot, creating it on first sight; the shared overflow
  /// slot once the table is full.
  TenantSlot* SlotFor(const std::string& tenant) FO2DT_REQUIRES(mu_);

  const AdmissionConfig config_;
  const uint64_t default_deadline_ms_;

  mutable Mutex mu_{names::kLockServerAdmission};
  uint64_t queue_depth_ FO2DT_GUARDED_BY(mu_) = 0;
  AdmissionStats stats_ FO2DT_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> tenant_active_ FO2DT_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<TenantSlot>> tenants_ FO2DT_GUARDED_BY(mu_);
  TenantSlot overflow_ FO2DT_GUARDED_BY(mu_){"other"};
};

}  // namespace fo2dt
