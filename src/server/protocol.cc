#include "server/protocol.h"

#include <cctype>

#include "common/strings.h"

namespace fo2dt {

namespace {

/// Flat JSON scanner over one request line. Positions in errors are 0-based
/// byte offsets — request lines are single lines, so line/column adds
/// nothing over the offset.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  Status Error(const std::string& what) const {
    return Status::ParseError(StringFormat(
        "%s in request line (byte %llu)", what.c_str(),
        static_cast<unsigned long long>(pos_)));
  }

  void SkipSpace() {
    for (; pos_ < text_.size(); ++pos_) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') break;
    }
  }

  bool Done() const { return pos_ >= text_.size(); }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void Advance() { ++pos_; }

  Status Expect(char c) {
    SkipSpace();
    if (Done() || text_[pos_] != c) {
      return Error(StringFormat("expected '%c'", c));
    }
    ++pos_;
    return Status::OK();
  }

  /// Parses a JSON string literal (opening quote already NOT consumed).
  /// Handles the standard escapes including \uXXXX (encoded as UTF-8;
  /// surrogate pairs are rejected — facade bodies are ASCII text formats).
  Result<std::string> String() {
    FO2DT_RETURN_NOT_OK(Expect('"'));
    std::string out;
    for (; pos_ < text_.size(); ++pos_) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) return Error("raw control byte in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      ++pos_;
      if (Done()) return Error("dangling escape");
      char e = text_[pos_];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (Done()) return Error("truncated \\u escape");
            char h = text_[pos_];
            uint32_t digit;
            if (h >= '0' && h <= '9') digit = static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') digit = static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') digit = static_cast<uint32_t>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
            code = code * 16 + digit;
          }
          if (code >= 0xd800 && code <= 0xdfff) {
            return Error("surrogate \\u escape unsupported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  /// Non-negative integer (the protocol has no floats or negatives).
  Result<uint64_t> Integer() {
    SkipSpace();
    size_t start = pos_;
    uint64_t value = 0;
    for (; pos_ < text_.size(); ++pos_) {
      char c = text_[pos_];
      if (c < '0' || c > '9') break;
      uint64_t digit = static_cast<uint64_t>(c - '0');
      if (value > (UINT64_MAX - digit) / 10) return Error("integer overflows");
      value = value * 10 + digit;
    }
    if (pos_ == start) return Error("expected integer");
    return value;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

void SplitBodyLines(const std::string& joined, std::vector<std::string>* out) {
  size_t start = 0;
  for (size_t i = 0; i <= joined.size(); ++i) {
    if (i == joined.size() || joined[i] == '\n') {
      if (i > start) out->push_back(joined.substr(start, i - start));
      start = i + 1;
    }
  }
}

}  // namespace

Result<ServerRequest> ParseRequestLine(const std::string& line) {
  JsonScanner scan(line);
  ServerRequest req;
  FO2DT_RETURN_NOT_OK(scan.Expect('{'));
  scan.SkipSpace();
  // One iteration per key; each consumes at least one byte, bounded by the
  // transport's line-length cap.
  bool first_member = true;
  // fo2dt-lint: allow(no-checkpoint, parse loop bounded by request line length)
  while (true) {
    scan.SkipSpace();
    // '}' closes the object only when not preceded by a comma: a trailing
    // comma ("{\"op\":\"x\",}") is hostile-grammar, not leniency.
    if (first_member && scan.Peek() == '}') {
      scan.Advance();
      break;
    }
    first_member = false;
    FO2DT_ASSIGN_OR_RETURN(std::string key, scan.String());
    FO2DT_RETURN_NOT_OK(scan.Expect(':'));
    scan.SkipSpace();
    if (key == "op" || key == "id" || key == "request_id" ||
        key == "tenant" || key == "facade" || key == "body") {
      FO2DT_ASSIGN_OR_RETURN(std::string value, scan.String());
      if (key == "op") req.op = value;
      else if (key == "id") req.id = value;
      else if (key == "request_id") req.request_id = value;
      else if (key == "tenant") req.tenant = value;
      else if (key == "facade") req.facade = value;
      else SplitBodyLines(value, &req.body);
    } else if (key == "deadline_ms" || key == "max_bytes" ||
               key == "max_effort") {
      FO2DT_ASSIGN_OR_RETURN(uint64_t value, scan.Integer());
      if (key == "deadline_ms") req.deadline_ms = value;
      else if (key == "max_bytes") req.max_bytes = value;
      else req.max_effort = value;
    } else {
      return scan.Error(StringFormat("unknown request key '%s'",
                                     JsonEscape(key).c_str()));
    }
    scan.SkipSpace();
    if (scan.Peek() == ',') {
      scan.Advance();
      continue;
    }
    if (scan.Peek() == '}') {
      scan.Advance();
      break;
    }
    return scan.Error("expected ',' or '}'");
  }
  scan.SkipSpace();
  if (!scan.Done()) return scan.Error("trailing content after request object");
  if (req.op.empty()) return Status::ParseError("request has no op");
  return req;
}

std::string ServerResponse::ToJsonLine() const {
  std::string out = "{";
  auto add_str = [&out](const char* key, const std::string& value) {
    if (value.empty()) return;
    if (out.size() > 1) out += ",";
    out += StringFormat("\"%s\":\"%s\"", key, JsonEscape(value).c_str());
  };
  auto add_int = [&out](const char* key, uint64_t value) {
    if (out.size() > 1) out += ",";
    out += StringFormat("\"%s\":%llu", key,
                        static_cast<unsigned long long>(value));
  };
  add_str("id", id);
  add_str("request_id", request_id);
  add_str("status", status);
  add_str("verdict", verdict);
  add_str("method", method);
  if (steps != 0) add_int("steps", steps);
  add_str("stop_kind", stop_kind);
  add_str("stop_module", stop_module);
  add_str("cache", cache);
  add_str("detail", detail);
  add_int("queue_depth", queue_depth);
  if (degraded) add_int("degraded", 1);
  if (!metrics.empty()) {
    if (out.size() > 1) out += ",";
    out += "\"metrics\":{";
    bool first = true;
    for (const auto& [key, value] : metrics) {
      if (!first) out += ",";
      first = false;
      out += StringFormat("\"%s\":%llu", JsonEscape(key).c_str(),
                          static_cast<unsigned long long>(value));
    }
    out += "}";
  }
  add_str("exposition", exposition);
  out += "}\n";
  return out;
}

}  // namespace fo2dt
