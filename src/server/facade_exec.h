/// \file facade_exec.h
/// \brief Shared facade execution core: runs one serialized facade body
/// (the `input.fo2dt` line grammar of common/flight_recorder.h) under an
/// ExecutionContext and returns the SolveOutcome.
///
/// Two consumers share this grammar and must never drift apart:
///
///  * `tools/replay/fo2dt_replay` — deterministic re-execution of captured
///    post-mortem bundles;
///  * `fo2dtd` (src/server/server.h) — the solve server, whose requests
///    carry exactly this body text over the wire.
///
/// The body is a list of lines: common `budget <key> <value>`,
/// `flag <key> <value>` and `labels <n>` lines plus facade-specific payload
/// lines (`formula ...`, `schema` + 6-line automaton, `key <e> <a>`,
/// `vata ...`, ...). See DESIGN.md §8 for the full grammar.
///
/// The server threads per-request quota enforcement through
/// FacadeBudgetCaps: a non-zero cap clamps the body's requested effort
/// budget (max_steps / max_ilp_nodes / max_candidates, whichever drives the
/// facade) from above, which is how the overload shedding ladder shrinks
/// work without rewriting request text.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/query_log.h"
#include "common/status.h"

namespace fo2dt {

class ExecutionContext;

/// Upper bounds imposed on the body's requested budgets (0 = no cap).
struct FacadeBudgetCaps {
  /// Caps the facade's driving effort budget: max_steps for the bounded
  /// search facades, max_ilp_nodes for constraints.keyfk, max_candidates
  /// for vata.accepts.
  uint64_t max_effort = 0;
};

/// Maps a wire facade name onto the registered constant (names::kFacade*),
/// or nullptr when \p facade is not a registered facade. Server code keys
/// recorders and logs on the returned static string.
const char* LookupFacadeName(const std::string& facade);

/// True when ExecuteFacadeBody can run \p facade (a registered facade with
/// a body parser; xpath facades have parsers, dnf_sat does not).
bool FacadeIsExecutable(const std::string& facade);

/// The canonical-label alphabet size mentioned anywhere in \p body ("l7"
/// forces at least 8 labels). Bodies serialize formulas positionally over
/// l0..lN, so the replay alphabet must cover every mentioned id.
size_t MaxCanonicalLabel(const std::vector<std::string>& body);

/// Parses and executes one facade body under \p exec, clamping budgets by
/// \p caps. Returns the outcome (which is also where degraded solves
/// surface, as UNKNOWN + StopReason), or a Status for malformed bodies and
/// non-budget failures.
Result<SolveOutcome> ExecuteFacadeBody(const std::string& facade,
                                       const std::vector<std::string>& body,
                                       const ExecutionContext* exec,
                                       const FacadeBudgetCaps& caps = {});

}  // namespace fo2dt
