/// \file server.h
/// \brief fo2dtd core: a long-lived multi-tenant solve server over a Unix
/// domain socket.
///
/// Threading model (DESIGN.md §10.2):
///
///   accept thread    poll()s the listener, one iteration per connection;
///                    never blocks on a client — admission rejects instead.
///   reader threads   one per connection: split request lines, answer
///                    ping/stats inline, run solve admission, enqueue.
///   worker pool      num_workers threads popping the bounded queue; each
///                    solve runs under a fresh ExecutionContext whose
///                    deadline/memory/effort budgets came out of admission.
///   watchdog         scans busy workers every ~100 ms and cancels any
///                    solve running past its deadline plus grace — a stuck
///                    solver fails one request (the still-connected client
///                    gets its ERROR/UNKNOWN response), never the daemon.
///                    The same sweep joins reader threads of disconnected
///                    clients, so a long-lived daemon never accumulates
///                    dead fds or finished threads.
///
/// Cancellation is hierarchical: server lifecycle token → per-connection
/// token → per-solve token. A client disconnect cancels that connection's
/// queued and in-flight solves mid-flight (the only case that suppresses a
/// response); SIGTERM (Shutdown) stops the listener, closes the queue —
/// solves dispatched past that barrier get a structured "server draining"
/// rejection, never a silent drop — drains admitted work, and only then
/// tears down connections, so the query log and solve-cache file are
/// complete and parseable afterwards.
///
/// Failpoints (lint/asan/tsan builds): `server.accept_fault` fails one
/// accept iteration, `server.worker_crash` fails one worker solve (the
/// daemon stays up), `server.slow_drain` stretches the drain window so
/// crash-safety tests can interrupt it.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/execution_context.h"
#include "common/mutex.h"
#include "common/status.h"
#include "server/admission.h"
#include "server/protocol.h"

namespace fo2dt {

struct SolveServerOptions {
  /// Filesystem path the AF_UNIX listener binds (unlinked on shutdown).
  std::string socket_path;
  uint64_t num_workers = 4;
  AdmissionConfig admission;
  /// Deadline applied when a request names none (and quota allows it).
  uint64_t default_deadline_ms = 2000;
  /// Watchdog slack past a solve's deadline before it is force-cancelled.
  uint64_t watchdog_grace_ms = 1000;
  /// Hard cap on one request line; longer lines fail the connection.
  uint64_t max_request_line_bytes = 4u << 20;
};

/// Counters owned by the server proper (admission owns accept/reject/degrade
/// accounting; see AdmissionStats).
struct ServerStats {
  uint64_t completed = 0;
  uint64_t worker_faults = 0;
  uint64_t watchdog_kills = 0;
  uint64_t disconnect_cancels = 0;
  AdmissionStats admission;
};

class SolveServer {
 public:
  explicit SolveServer(SolveServerOptions options);
  ~SolveServer();
  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;

  /// Binds the socket and spawns accept/worker/watchdog threads. Fails if
  /// the path cannot be bound (stale sockets are unlinked first).
  Status Start();

  /// Graceful drain: stop accepting, close the queue (later solves reject
  /// with "server draining"), finish (or watchdog-cancel) queued and
  /// in-flight solves, flush nothing — every log/cache append is already a
  /// single O_APPEND write — then tear down connections. Idempotent.
  void Shutdown();

  ServerStats stats() const;

  /// Per-tenant ladder counters + latency histograms (admission's bounded
  /// tenant table); what the `metrics` op renders as tenant series.
  std::vector<TenantMetrics> TenantSnapshot() const {
    return admission_.TenantSnapshot();
  }

 private:
  struct Connection {
    Mutex write_mu{names::kLockServerConnWrite};
    int fd FO2DT_GUARDED_BY(write_mu) = -1;  // -1 once closed
    /// The reader thread handle. Guarded by the server's conns_mu_ (a nested
    /// struct cannot name the enclosing object's member in an attribute):
    /// at disconnect the reader moves its own handle into dead_readers_
    /// (self-reap); at Shutdown the teardown loop moves it out to join —
    /// exactly one side wins the handoff.
    std::thread reader;
    CancellationToken token;       // child of the lifecycle token
    // atomic: admitted-not-yet-responded count; relaxed inc/dec from reader
    // and worker threads, read only for observability (no ordering needed).
    std::atomic<uint64_t> pending{0};
  };

  struct WorkItem {
    std::shared_ptr<Connection> conn;
    std::string id;
    std::string request_id;        // correlation id (client or server minted)
    std::string tenant;
    const char* facade = nullptr;  // registered constant (LookupFacadeName)
    std::vector<std::string> body;
    uint64_t deadline_ms = 0;
    uint64_t max_bytes = 0;
    uint64_t max_effort = 0;
    uint64_t queue_depth = 0;
    bool degraded = false;
    CancellationToken token;       // child of the connection token
    /// Reader-side receipt time: queue wait and wire latency are both
    /// measured from here (admission runs on the reader, so enqueue ≈
    /// receipt at histogram-bucket resolution).
    std::chrono::steady_clock::time_point received;
  };

  /// Watchdog bookkeeping for one worker thread.
  struct WorkerSlot {
    Mutex mu{names::kLockServerWorkerSlot};
    bool busy FO2DT_GUARDED_BY(mu) = false;
    bool killed FO2DT_GUARDED_BY(mu) = false;
    std::chrono::steady_clock::time_point start FO2DT_GUARDED_BY(mu);
    uint64_t deadline_ms FO2DT_GUARDED_BY(mu) = 0;
    CancellationToken token FO2DT_GUARDED_BY(mu);
  };

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WorkerLoop(size_t worker_index);
  void WatchdogLoop();

  /// Handles one parsed request on the reader thread; solve requests are
  /// admitted + enqueued, everything else answers inline.
  void Dispatch(const std::shared_ptr<Connection>& conn, ServerRequest req);

  /// Runs one admitted solve on a worker thread and sends the response.
  void RunSolve(WorkItem item, WorkerSlot* slot);

  void SendResponse(const std::shared_ptr<Connection>& conn,
                    const ServerResponse& resp);

  /// Renders the whole telemetry plane as Prometheus-style text for the
  /// `metrics` op: registry counters/gauges, the server histograms as
  /// `_bucket`/`_sum`/`_count` series, and the per-tenant ladder table.
  std::string BuildExposition() const;

  /// Workers currently inside RunSolve (the server.workers_busy gauge).
  uint64_t WorkersBusy() const;

  /// Joins reader threads of connections that disconnected and self-reaped.
  /// Called by the watchdog sweep and at the end of Shutdown.
  void ReapDeadReaders();

  const SolveServerOptions options_;
  AdmissionController admission_;

  CancellationToken lifecycle_token_;  // cancelled at final teardown
  CancellationToken accept_token_;     // cancelled at drain start

  int listen_fd_ = -1;
  bool started_ = false;
  bool shut_down_ = false;

  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;

  Mutex queue_mu_{names::kLockServerQueue};
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_ FO2DT_GUARDED_BY(queue_mu_);
  bool draining_ FO2DT_GUARDED_BY(queue_mu_) = false;

  Mutex conns_mu_{names::kLockServerConns};
  std::vector<std::shared_ptr<Connection>> conns_ FO2DT_GUARDED_BY(conns_mu_);
  /// Handles of exited reader threads awaiting join.
  std::vector<std::thread> dead_readers_ FO2DT_GUARDED_BY(conns_mu_);

  // atomic: monotonically increasing observability counters; relaxed
  // increments from worker/watchdog threads, relaxed reads in stats().
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> worker_faults_{0};
  std::atomic<uint64_t> watchdog_kills_{0};
  std::atomic<uint64_t> disconnect_cancels_{0};
};

}  // namespace fo2dt
