#include "server/facade_exec.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>

#include "automata/automaton_io.h"
#include "common/execution_context.h"
#include "common/flight_recorder.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "constraints/constraints.h"
#include "datatree/text_io.h"
#include "frontend/solver.h"
#include "logic/parser.h"
#include "vata/vata.h"
#include "xpath/xpath.h"

namespace fo2dt {

namespace {

/// First whitespace-delimited word of \p line; \p rest gets the remainder
/// (with the single separating space stripped).
std::string SplitWord(const std::string& line, std::string* rest) {
  size_t space = line.find(' ');
  if (space == std::string::npos) {
    *rest = "";
    return line;
  }
  *rest = line.substr(space + 1);
  return line.substr(0, space);
}

/// Strict decimal u64: the whole field must be digits and fit in 64 bits.
/// Body fields are network-facing, so overflow and trailing garbage are
/// parse errors (the same contract as the JSON and automaton number
/// scanners), never a silent wrap mod 2^64.
Result<uint64_t> ParseU64(const std::string& s) {
  if (s.empty()) {
    return Status::ParseError("expected unsigned integer, got empty field");
  }
  std::string shown = s.size() > 32 ? s.substr(0, 32) + "..." : s;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::ParseError(StringFormat(
          "malformed unsigned integer '%s'", shown.c_str()));
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::ParseError(
          StringFormat("number '%s' overflows", shown.c_str()));
    }
    value = value * 10 + digit;
  }
  return value;
}

/// A requested budget clamped from above by a cap (0 = uncapped). The
/// shedding ladder shrinks caps, never raises requests.
uint64_t CapBudget(uint64_t requested, uint64_t cap) {
  if (cap == 0) return requested;
  return std::min(requested, cap);
}

/// Sanity ceiling on alphabet sizes a request body can demand. Bodies are
/// network-facing: a hostile `labels 18446744073709551615` (or a formula
/// mentioning l999999999) must fail parsing, not materialize the alphabet.
constexpr size_t kMaxBodyLabels = 1u << 20;

Result<Alphabet> MakeBoundedReplayAlphabet(size_t n) {
  if (n > kMaxBodyLabels) {
    return Status::ParseError(StringFormat(
        "alphabet size %llu implausibly large (cap %llu)",
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(kMaxBodyLabels)));
  }
  return MakeReplayAlphabet(n);
}

/// Shared per-body state while walking the facade lines.
struct BodyReader {
  const std::vector<std::string>& lines;
  size_t next = 0;

  bool Done() const { return next >= lines.size(); }
  const std::string& Peek() const { return lines[next]; }
  std::string Take() { return lines[next++]; }

  /// Consumes the 6-line automaton section that follows a "schema"/"filter"
  /// marker line.
  Result<TreeAutomaton> TakeAutomaton() {
    std::string text;
    for (int i = 0; i < 6 && !Done(); ++i) text += Take() + "\n";
    return ParseTreeAutomaton(text);
  }
};

struct ParsedBudgets {
  std::map<std::string, uint64_t> values;

  uint64_t Get(const char* key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

/// Collects `budget k v` and `flag k v` lines wherever they appear. True
/// when the current line was consumed as a common line.
Result<bool> ConsumeCommon(BodyReader* body, ParsedBudgets* budgets,
                           ParsedBudgets* flags, size_t* labels) {
  std::string rest;
  std::string word = SplitWord(body->Peek(), &rest);
  if (word == "budget") {
    std::string value;
    std::string key = SplitWord(rest, &value);
    FO2DT_ASSIGN_OR_RETURN(budgets->values[key], ParseU64(value));
  } else if (word == "flag") {
    std::string value;
    std::string key = SplitWord(rest, &value);
    FO2DT_ASSIGN_OR_RETURN(flags->values[key], ParseU64(value));
  } else if (word == "labels") {
    FO2DT_ASSIGN_OR_RETURN(uint64_t n, ParseU64(rest));
    *labels = static_cast<size_t>(n);
  } else {
    return false;
  }
  (void)body->Take();
  return true;
}

Result<SolveOutcome> ExecFrontendSat(const std::vector<std::string>& body_lines,
                                     const ExecutionContext* exec,
                                     const FacadeBudgetCaps& caps) {
  BodyReader body{body_lines};
  ParsedBudgets budgets, flags;
  size_t labels = 0;
  std::optional<TreeAutomaton> filter;
  std::string formula_text;
  // fo2dt-lint: allow(no-checkpoint, loop consumes one body line per iteration, bounded by request size)
  while (!body.Done()) {
    FO2DT_ASSIGN_OR_RETURN(bool consumed,
                           ConsumeCommon(&body, &budgets, &flags, &labels));
    if (consumed) continue;
    std::string rest;
    std::string word = SplitWord(body.Peek(), &rest);
    if (word == "filter") {
      (void)body.Take();
      FO2DT_ASSIGN_OR_RETURN(TreeAutomaton a, body.TakeAutomaton());
      filter = std::move(a);
    } else if (word == "formula") {
      (void)body.Take();
      formula_text = rest;
    } else {
      return Status::ParseError(StringFormat(
          "unexpected line '%s' in %s body", body.Peek().c_str(),
          names::kFacadeFrontendSat));
    }
  }
  if (formula_text.empty()) {
    return Status::ParseError(StringFormat("%s body has no formula",
                                           names::kFacadeFrontendSat));
  }
  FO2DT_ASSIGN_OR_RETURN(
      Alphabet alphabet,
      MakeBoundedReplayAlphabet(std::max(labels, MaxCanonicalLabel(body_lines))));
  FO2DT_ASSIGN_OR_RETURN(Formula sentence,
                         ParseFormula(formula_text, &alphabet));
  SolverOptions options;
  options.num_labels = labels;
  options.max_model_nodes =
      static_cast<size_t>(budgets.Get("max_model_nodes", 6));
  options.max_steps = CapBudget(budgets.Get("max_steps", 20000000),
                                caps.max_effort);
  options.use_counting_abstraction = flags.Get("use_counting_abstraction", 1) != 0;
  if (filter.has_value()) options.structural_filter = &*filter;
  options.exec = exec;
  return SolveOutcomeFromSat(CheckFo2SatisfiabilityBounded(sentence, options));
}

struct ConstraintBody {
  TreeAutomaton schema;
  ConstraintSet set;
  std::string conclusion_text;
  ParsedBudgets budgets;
};

Result<ConstraintBody> ParseConstraintBody(
    const std::vector<std::string>& body_lines) {
  BodyReader body{body_lines};
  ConstraintBody out;
  ParsedBudgets flags;
  size_t labels = 0;
  bool schema_seen = false;
  // fo2dt-lint: allow(no-checkpoint, loop consumes one body line per iteration, bounded by request size)
  while (!body.Done()) {
    FO2DT_ASSIGN_OR_RETURN(
        bool consumed, ConsumeCommon(&body, &out.budgets, &flags, &labels));
    if (consumed) continue;
    std::string rest;
    std::string word = SplitWord(body.Peek(), &rest);
    if (word == "schema") {
      (void)body.Take();
      FO2DT_ASSIGN_OR_RETURN(out.schema, body.TakeAutomaton());
      schema_seen = true;
    } else if (word == "key") {
      (void)body.Take();
      std::string attr;
      std::string elem = SplitWord(rest, &attr);
      FO2DT_ASSIGN_OR_RETURN(uint64_t elem_id, ParseU64(elem));
      FO2DT_ASSIGN_OR_RETURN(uint64_t attr_id, ParseU64(attr));
      out.set.keys.push_back(UnaryKey{static_cast<Symbol>(elem_id),
                                      static_cast<Symbol>(attr_id)});
    } else if (word == "inclusion") {
      (void)body.Take();
      std::istringstream fields(rest);
      uint64_t fe = 0, fa = 0, te = 0, ta = 0;
      fields >> fe >> fa >> te >> ta;
      out.set.inclusions.push_back(UnaryInclusion{
          static_cast<Symbol>(fe), static_cast<Symbol>(fa),
          static_cast<Symbol>(te), static_cast<Symbol>(ta)});
    } else if (word == "conclusion") {
      (void)body.Take();
      out.conclusion_text = rest;
    } else {
      return Status::ParseError(StringFormat(
          "unexpected line '%s' in constraints body", body.Peek().c_str()));
    }
  }
  if (!schema_seen) {
    return Status::ParseError("constraints body has no schema");
  }
  return out;
}

Result<SolveOutcome> ExecConstraints(const std::string& facade,
                                     const std::vector<std::string>& body_lines,
                                     const ExecutionContext* exec,
                                     const FacadeBudgetCaps& caps) {
  FO2DT_ASSIGN_OR_RETURN(ConstraintBody body, ParseConstraintBody(body_lines));
  if (facade == names::kFacadeConstraintsKeyfk) {
    LctaOptions options;
    options.max_ilp_nodes = static_cast<size_t>(
        CapBudget(body.budgets.Get("max_ilp_nodes", 200000), caps.max_effort));
    options.max_cuts = static_cast<size_t>(body.budgets.Get("max_cuts", 200));
    options.max_dnf_branches =
        static_cast<size_t>(body.budgets.Get("max_dnf_branches", 4096));
    options.num_threads = 1;  // single-threaded replay is deterministic
    options.exec = exec;
    return SolveOutcomeFromSat(
        CheckKeyForeignKeyConsistencyIlp(body.schema, body.set, options));
  }
  SolverOptions options;
  options.max_model_nodes =
      static_cast<size_t>(body.budgets.Get("max_model_nodes", 6));
  options.max_steps = CapBudget(body.budgets.Get("max_steps", 20000000),
                                caps.max_effort);
  options.exec = exec;
  if (facade == names::kFacadeConstraintsImplication) {
    if (body.conclusion_text.empty()) {
      return Status::ParseError("implication body has no conclusion");
    }
    FO2DT_ASSIGN_OR_RETURN(
        Alphabet alphabet,
        MakeBoundedReplayAlphabet(std::max(body.schema.num_symbols(),
                                           MaxCanonicalLabel(body_lines))));
    FO2DT_ASSIGN_OR_RETURN(Formula conclusion,
                           ParseFormula(body.conclusion_text, &alphabet));
    return SolveOutcomeFromSat(
        CheckImplicationBounded(body.schema, body.set, conclusion, options));
  }
  return SolveOutcomeFromSat(
      CheckConsistencyBounded(body.schema, body.set, options));
}

Result<SolveOutcome> ExecXpath(const std::string& facade,
                               const std::vector<std::string>& body_lines,
                               const ExecutionContext* exec,
                               const FacadeBudgetCaps& caps) {
  BodyReader body{body_lines};
  ParsedBudgets budgets, flags;
  size_t labels = 0;
  std::optional<TreeAutomaton> schema;
  std::vector<std::string> xpath_texts;
  // fo2dt-lint: allow(no-checkpoint, loop consumes one body line per iteration, bounded by request size)
  while (!body.Done()) {
    FO2DT_ASSIGN_OR_RETURN(bool consumed,
                           ConsumeCommon(&body, &budgets, &flags, &labels));
    if (consumed) continue;
    std::string rest;
    std::string word = SplitWord(body.Peek(), &rest);
    if (word == "schema") {
      (void)body.Take();
      FO2DT_ASSIGN_OR_RETURN(TreeAutomaton a, body.TakeAutomaton());
      schema = std::move(a);
    } else if (word == "xpath") {
      (void)body.Take();
      xpath_texts.push_back(rest);
    } else {
      return Status::ParseError(StringFormat(
          "unexpected line '%s' in xpath body", body.Peek().c_str()));
    }
  }
  FO2DT_ASSIGN_OR_RETURN(
      Alphabet alphabet,
      MakeBoundedReplayAlphabet(std::max(labels, MaxCanonicalLabel(body_lines))));
  std::vector<XpPath> paths;
  for (const std::string& text : xpath_texts) {
    FO2DT_ASSIGN_OR_RETURN(XpPath p, ParseXPath(text, &alphabet));
    paths.push_back(std::move(p));
  }
  SolverOptions options;
  options.max_model_nodes =
      static_cast<size_t>(budgets.Get("max_model_nodes", 6));
  options.max_steps = CapBudget(budgets.Get("max_steps", 20000000),
                                caps.max_effort);
  options.exec = exec;
  const TreeAutomaton* schema_ptr = schema.has_value() ? &*schema : nullptr;
  if (facade == names::kFacadeXpathContainment) {
    if (paths.size() != 2) {
      return Status::ParseError("xpath containment body needs two xpath lines");
    }
    return SolveOutcomeFromSat(
        CheckXPathContainment(paths[0], paths[1], schema_ptr, options));
  }
  if (paths.size() != 1) {
    return Status::ParseError("xpath sat body needs one xpath line");
  }
  return SolveOutcomeFromSat(
      CheckXPathSatisfiability(paths[0], schema_ptr, options));
}

Result<CounterVec> TakeVec(std::istringstream* fields, size_t n) {
  CounterVec v(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(*fields >> v[i])) {
      return Status::ParseError("short counter vector in vata body");
    }
  }
  return v;
}

Result<SolveOutcome> ExecVata(const std::vector<std::string>& body_lines,
                              const ExecutionContext* exec,
                              const FacadeBudgetCaps& caps) {
  BodyReader body{body_lines};
  ParsedBudgets budgets, flags;
  size_t labels = 0;
  VataAutomaton a;
  std::string tree_text;
  // fo2dt-lint: allow(no-checkpoint, loop consumes one body line per iteration, bounded by request size)
  while (!body.Done()) {
    FO2DT_ASSIGN_OR_RETURN(bool consumed,
                           ConsumeCommon(&body, &budgets, &flags, &labels));
    if (consumed) continue;
    std::string rest;
    std::string word = SplitWord(body.Peek(), &rest);
    if (word == "vata") {
      (void)body.Take();
      std::istringstream fields(rest);
      fields >> a.num_counters >> a.num_states >> a.num_labels;
      // Sanity caps before anything allocates proportionally to the header:
      // every rule carries CounterVec(num_counters) and the alphabet
      // materializes num_labels names, so a hostile header must fail here.
      constexpr size_t kMaxVataDim = 1u << 20;
      if (a.num_counters > kMaxVataDim || a.num_states > kMaxVataDim ||
          a.num_labels > kMaxVataDim) {
        return Status::ParseError(
            "vata header dimensions implausibly large");
      }
    } else if (word == "accepting") {
      (void)body.Take();
      std::istringstream fields(rest);
      size_t k = 0;
      fields >> k;
      // Stops at extraction failure, not at k: a hostile count with no
      // matching payload must not drive the loop.
      for (size_t i = 0; i < k; ++i) {
        VataState q = 0;
        if (!(fields >> q)) {
          return Status::ParseError("short accepting list in vata body");
        }
        a.accepting.push_back(q);
      }
    } else if (word == "leafrules") {
      FO2DT_ASSIGN_OR_RETURN(uint64_t count, ParseU64(rest));
      size_t k = static_cast<size_t>(count);
      (void)body.Take();
      for (size_t i = 0; i < k && !body.Done(); ++i) {
        std::istringstream fields(body.Take());
        VataLeafRule rule;
        fields >> rule.label >> rule.state;
        FO2DT_ASSIGN_OR_RETURN(rule.vector, TakeVec(&fields, a.num_counters));
        a.leaf_rules.push_back(std::move(rule));
      }
    } else if (word == "transitions") {
      FO2DT_ASSIGN_OR_RETURN(uint64_t count, ParseU64(rest));
      size_t k = static_cast<size_t>(count);
      (void)body.Take();
      for (size_t i = 0; i < k && !body.Done(); ++i) {
        std::istringstream fields(body.Take());
        VataTransition tr;
        fields >> tr.label >> tr.left_state;
        FO2DT_ASSIGN_OR_RETURN(tr.take_left, TakeVec(&fields, a.num_counters));
        fields >> tr.right_state;
        FO2DT_ASSIGN_OR_RETURN(tr.take_right, TakeVec(&fields, a.num_counters));
        fields >> tr.result_state;
        FO2DT_ASSIGN_OR_RETURN(tr.add, TakeVec(&fields, a.num_counters));
        a.transitions.push_back(std::move(tr));
      }
    } else if (word == "tree") {
      (void)body.Take();
      tree_text = rest;
    } else {
      return Status::ParseError(StringFormat(
          "unexpected line '%s' in vata body", body.Peek().c_str()));
    }
  }
  if (tree_text.empty()) {
    return Status::ParseError("vata body has no tree");
  }
  FO2DT_ASSIGN_OR_RETURN(
      Alphabet alphabet,
      MakeBoundedReplayAlphabet(
          std::max(a.num_labels, MaxCanonicalLabel(body_lines))));
  FO2DT_ASSIGN_OR_RETURN(DataTree t, ParseDataTree(tree_text, &alphabet));
  size_t max_candidates = static_cast<size_t>(
      CapBudget(budgets.Get("max_candidates", 100000), caps.max_effort));
  Result<bool> accepted = VataAccepts(a, t, max_candidates, exec);
  SolveOutcome outcome;
  if (accepted.ok()) {
    outcome.verdict = *accepted ? "ACCEPT" : "REJECT";
  } else {
    outcome.verdict = std::string("ERROR:") +
                      StatusCodeToString(accepted.status().code());
    if (const StopReason* reason = accepted.status().stop_reason()) {
      outcome.stop = *reason;
    }
  }
  return outcome;
}

}  // namespace

const char* LookupFacadeName(const std::string& facade) {
  for (const char* registered : names::kAllFacades) {
    if (facade == registered) return registered;
  }
  return nullptr;
}

bool FacadeIsExecutable(const std::string& facade) {
  // Every registered facade except dnf_sat, whose DataNormalForm input has
  // no textual body parser (SerializeDnf is hash-only).
  return LookupFacadeName(facade) != nullptr &&
         facade != names::kFacadeFrontendDnfSat;
}

size_t MaxCanonicalLabel(const std::vector<std::string>& body) {
  size_t alpha = 0;
  for (const std::string& line : body) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] != 'l') continue;
      if (i > 0 && (std::isalnum(static_cast<unsigned char>(line[i - 1])) ||
                    line[i - 1] == '_')) {
        continue;
      }
      size_t j = i + 1;
      uint64_t value = 0;
      // fo2dt-lint: allow(no-checkpoint, digit scan bounded by line length)
      while (j < line.size() && line[j] >= '0' && line[j] <= '9') {
        value = value * 10 + static_cast<uint64_t>(line[j] - '0');
        // Saturate above the body-label cap instead of wrapping: a hostile
        // l<19 digits> token must stay over the cap so alphabet
        // construction rejects it.
        if (value > kMaxBodyLabels) value = kMaxBodyLabels + 1;
        ++j;
      }
      if (j == i + 1) continue;  // bare 'l'
      if (j < line.size() && (std::isalnum(static_cast<unsigned char>(line[j])) ||
                              line[j] == '_')) {
        continue;  // identifier like l0abc, not a canonical label
      }
      if (value + 1 > alpha) alpha = static_cast<size_t>(value + 1);
    }
  }
  return alpha;
}

Result<SolveOutcome> ExecuteFacadeBody(const std::string& facade,
                                       const std::vector<std::string>& body,
                                       const ExecutionContext* exec,
                                       const FacadeBudgetCaps& caps) {
  if (facade == names::kFacadeFrontendSat) {
    return ExecFrontendSat(body, exec, caps);
  }
  if (facade == names::kFacadeConstraintsConsistency ||
      facade == names::kFacadeConstraintsImplication ||
      facade == names::kFacadeConstraintsKeyfk) {
    return ExecConstraints(facade, body, exec, caps);
  }
  if (facade == names::kFacadeXpathSat ||
      facade == names::kFacadeXpathContainment) {
    return ExecXpath(facade, body, exec, caps);
  }
  if (facade == names::kFacadeVataAccepts) {
    return ExecVata(body, exec, caps);
  }
  return Status::NotImplemented(StringFormat(
      "facade '%s' has no execution path", facade.c_str()));
}

}  // namespace fo2dt
