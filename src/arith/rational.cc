#include "arith/rational.h"

#include <ostream>

namespace fo2dt {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  Normalize();
}

void Rational::Normalize() {
  if (den_.IsNegative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (den_.IsOne()) return;  // already reduced: n/1
  if (num_.IsZero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (!g.IsOne()) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::operator+(const Rational& o) const {
  // Integer fast path: no cross-multiplication, no gcd.
  if (den_.IsOne() && o.den_.IsOne()) return Rational(num_ + o.num_);
  if (den_ == o.den_) return Rational(num_ + o.num_, den_);
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  if (den_.IsOne() && o.den_.IsOne()) return Rational(num_ - o.num_);
  if (den_ == o.den_) return Rational(num_ - o.num_, den_);
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  if (den_.IsOne() && o.den_.IsOne()) return Rational(num_ * o.num_);
  return Rational(num_ * o.num_, den_ * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  return Rational(num_ * o.den_, den_ * o.num_);
}

int Rational::Compare(const Rational& o) const {
  if (den_ == o.den_) return num_.Compare(o.num_);
  return (num_ * o.den_).Compare(o.num_ * den_);
}

std::string Rational::ToString() const {
  if (IsInteger()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

std::ostream& operator<<(std::ostream& os, const Rational& v) {
  return os << v.ToString();
}

}  // namespace fo2dt
