/// \file rational.h
/// \brief Exact rational numbers over BigInt.
///
/// Invariant: denominator > 0 and gcd(|num|, den) == 1; zero is 0/1.

#pragma once

#include <string>

#include "arith/bigint.h"

namespace fo2dt {

/// \brief Exact rational number (normalized fraction of BigInts).
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// From an integer (implicit: Rational is a drop-in numeric type).
  Rational(int64_t v) : num_(v), den_(1) {}  // NOLINT: implicit by design
  Rational(BigInt v) : num_(std::move(v)), den_(1) {}  // NOLINT
  /// num/den; normalizes sign and reduces. Precondition: !den.IsZero().
  Rational(BigInt num, BigInt den);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }
  bool IsNegative() const { return num_.IsNegative(); }
  bool IsPositive() const { return num_.IsPositive(); }
  /// True when the value is exactly 1.
  bool IsOne() const { return num_.IsOne() && den_.IsOne(); }
  /// True when the denominator is 1.
  bool IsInteger() const { return den_.IsOne(); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Precondition: !o.IsZero().
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  int Compare(const Rational& o) const;
  bool operator==(const Rational& o) const { return Compare(o) == 0; }
  bool operator!=(const Rational& o) const { return Compare(o) != 0; }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

  /// Largest integer <= this.
  BigInt Floor() const { return num_.FloorDiv(den_); }
  /// Smallest integer >= this.
  BigInt Ceil() const { return num_.CeilDiv(den_); }

  double ToDouble() const { return num_.ToDouble() / den_.ToDouble(); }
  /// "n" when integral, else "n/d".
  std::string ToString() const;

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& v);

}  // namespace fo2dt

