/// \file bigint.h
/// \brief Arbitrary-precision signed integers with an inline int64 fast path.
///
/// The LCTA emptiness procedure (Theorem 2) solves existential Presburger
/// constraints with an exact-rational simplex; pivoting blows past 64 bits
/// quickly, so all solver arithmetic is done over BigInt/Rational.
///
/// Representation: values that fit a machine int64 are stored inline with no
/// heap allocation (the overwhelmingly common case in solver pivots); only on
/// overflow does a value spill into a sign + little-endian base-2^32 limb
/// vector. The representation is canonical — a value is heap-backed iff it
/// does not fit int64 — so equality and hashing never compare across
/// representations. Results are demoted back to the inline form whenever they
/// shrink into range.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fo2dt {

/// \brief Arbitrary-precision signed integer.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a machine integer (implicit: BigInt is a drop-in numeric type).
  BigInt(int64_t v) : small_(v) {}  // NOLINT: implicit by design

  /// Parses an optionally signed decimal string.
  static Result<BigInt> FromString(const std::string& text);

  /// Decimal rendering, e.g. "-123".
  std::string ToString() const;

  /// Value as int64_t, or Overflow if out of range.
  Result<int64_t> ToInt64() const;
  /// Value as double (may lose precision; infinity on huge values).
  double ToDouble() const;

  bool IsZero() const { return small_rep_ && small_ == 0; }
  bool IsOne() const { return small_rep_ && small_ == 1; }
  bool IsNegative() const { return small_rep_ ? small_ < 0 : negative_; }
  bool IsPositive() const { return small_rep_ ? small_ > 0 : !negative_; }
  /// True when the value fits the inline int64 representation.
  bool FitsInt64() const { return small_rep_; }

  /// Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Truncated division (C semantics: quotient rounds toward zero).
  /// Precondition: !o.IsZero().
  BigInt operator/(const BigInt& o) const;
  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  /// Precondition: !o.IsZero().
  BigInt operator%(const BigInt& o) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }
  BigInt& operator/=(const BigInt& o) { return *this = *this / o; }
  BigInt& operator%=(const BigInt& o) { return *this = *this % o; }

  /// Three-way comparison: negative, zero, positive.
  int Compare(const BigInt& o) const {
    if (small_rep_ && o.small_rep_) {
      return small_ < o.small_ ? -1 : (small_ > o.small_ ? 1 : 0);
    }
    return CompareSlow(o);
  }

  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  /// Floor division: rounds toward negative infinity.
  /// Precondition: !o.IsZero().
  BigInt FloorDiv(const BigInt& o) const;
  /// Ceiling division: rounds toward positive infinity.
  /// Precondition: !o.IsZero().
  BigInt CeilDiv(const BigInt& o) const;

  /// Greatest common divisor; always non-negative. Gcd(0,0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  // Sign + magnitude view of either representation: inline values
  // materialize limbs into `storage`, heap values are referenced in place.
  // (No self-referential pointer, so the view is safely movable.)
  struct MagView {
    bool negative = false;
    bool inline_rep = true;
    std::vector<uint32_t> storage;
    const std::vector<uint32_t>* heap = nullptr;
    const std::vector<uint32_t>& mag() const {
      return inline_rep ? storage : *heap;
    }
  };
  MagView View() const;

  // Builds the canonical representation from sign + magnitude (demotes to the
  // inline form when the value fits int64).
  static BigInt FromMag(bool negative, std::vector<uint32_t> mag);
  static BigInt FromMagU64(bool negative, uint64_t mag);

  int CompareSlow(const BigInt& o) const;

  // Comparison/arithmetic on magnitudes only (interpret as non-negative).
  static int CompareMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Precondition: a >= b as magnitudes.
  static std::vector<uint32_t> SubMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Quotient and remainder of magnitudes. Precondition: !b.empty().
  static void DivModMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b,
                        std::vector<uint32_t>* q, std::vector<uint32_t>* r);
  static void TrimMag(std::vector<uint32_t>* m);

  // Inline representation: value == small_ when small_rep_.
  int64_t small_ = 0;
  bool small_rep_ = true;
  // Heap representation (canonical: only for |value| beyond int64).
  bool negative_ = false;
  std::vector<uint32_t> mag_;  // little-endian base 2^32
};

/// Stream rendering in decimal (for tests and diagnostics).
std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace fo2dt

