/// \file bigint.h
/// \brief Arbitrary-precision signed integers.
///
/// The LCTA emptiness procedure (Theorem 2) solves existential Presburger
/// constraints with an exact-rational simplex; pivoting blows past 64 bits
/// quickly, so all solver arithmetic is done over BigInt/Rational.
///
/// Representation: sign + little-endian magnitude in base 2^32 with no
/// trailing zero limbs; zero is the empty magnitude with sign +1.

#ifndef FO2DT_ARITH_BIGINT_H_
#define FO2DT_ARITH_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fo2dt {

/// \brief Arbitrary-precision signed integer.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a machine integer (implicit: BigInt is a drop-in numeric type).
  BigInt(int64_t v);  // NOLINT: implicit by design

  /// Parses an optionally signed decimal string.
  static Result<BigInt> FromString(const std::string& text);

  /// Decimal rendering, e.g. "-123".
  std::string ToString() const;

  /// Value as int64_t, or Overflow if out of range.
  Result<int64_t> ToInt64() const;
  /// Value as double (may lose precision; infinity on huge values).
  double ToDouble() const;

  bool IsZero() const { return mag_.empty(); }
  bool IsNegative() const { return negative_; }
  bool IsPositive() const { return !negative_ && !mag_.empty(); }

  /// Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Truncated division (C semantics: quotient rounds toward zero).
  /// Precondition: !o.IsZero().
  BigInt operator/(const BigInt& o) const;
  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  /// Precondition: !o.IsZero().
  BigInt operator%(const BigInt& o) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }
  BigInt& operator/=(const BigInt& o) { return *this = *this / o; }
  BigInt& operator%=(const BigInt& o) { return *this = *this % o; }

  /// Three-way comparison: negative, zero, positive.
  int Compare(const BigInt& o) const;

  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  /// Floor division: rounds toward negative infinity.
  /// Precondition: !o.IsZero().
  BigInt FloorDiv(const BigInt& o) const;
  /// Ceiling division: rounds toward positive infinity.
  /// Precondition: !o.IsZero().
  BigInt CeilDiv(const BigInt& o) const;

  /// Greatest common divisor; always non-negative. Gcd(0,0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  // Comparison/arithmetic on magnitudes only (interpret as non-negative).
  static int CompareMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Precondition: a >= b as magnitudes.
  static std::vector<uint32_t> SubMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Quotient and remainder of magnitudes. Precondition: !b.empty().
  static void DivModMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b,
                        std::vector<uint32_t>* q, std::vector<uint32_t>* r);
  static void TrimMag(std::vector<uint32_t>* m);

  void Normalize();

  bool negative_ = false;
  std::vector<uint32_t> mag_;  // little-endian base 2^32; empty == 0
};

/// Stream rendering in decimal (for tests and diagnostics).
std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace fo2dt

#endif  // FO2DT_ARITH_BIGINT_H_
