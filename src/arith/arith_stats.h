/// \file arith_stats.h
/// \brief Counters for the BigInt small-int fast path.
///
/// Every BigInt arithmetic operation (+ - * / % gcd compare) records whether
/// it was served entirely by the inline int64 representation or had to touch
/// the multi-limb slow path. Benchmarks report the fast-path rate to prove
/// where solver time goes.

#pragma once

#include <cstdint>

#include "common/thread_stats.h"

namespace fo2dt {

struct ArithCounters {
  /// Operations completed on the inline int64 representation.
  uint64_t small_ops = 0;
  /// Operations that needed multi-limb (heap) arithmetic.
  uint64_t big_ops = 0;

  void AddTo(ArithCounters* out) const {
    out->small_ops += small_ops;
    out->big_ops += big_ops;
  }
  void Clear() { *this = ArithCounters(); }

  /// Fraction of operations served by the fast path (1.0 when idle).
  double FastPathRate() const {
    uint64_t total = small_ops + big_ops;
    return total == 0 ? 1.0 : static_cast<double>(small_ops) / static_cast<double>(total);
  }
};

using ArithStats = ThreadStats<ArithCounters>;

}  // namespace fo2dt

