#include "arith/bigint.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "arith/arith_stats.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/registry_names.h"

namespace fo2dt {

namespace {

// Federates the BigInt fast-path counters into the unified MetricsRegistry.
const MetricsSourceRegistrar kArithMetricsSource(
    "arith",
    [](MetricsSnapshot* snap) {
      ArithCounters c = ArithStats::Aggregate();
      snap->Set(names::kMetricArithSmallOps, static_cast<double>(c.small_ops));
      snap->Set(names::kMetricArithBigOps, static_cast<double>(c.big_ops));
      snap->Set(names::kMetricArithFastPathRate, c.FastPathRate());
    },
    [] { ArithStats::Reset(); });

constexpr uint64_t kBase = 1ULL << 32;

// Two's-complement-safe |v| (valid for INT64_MIN).
inline uint64_t Abs64(int64_t v) {
  return v < 0 ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
}

inline void CountSmall() { ++ArithStats::Local().small_ops; }
inline void CountBig() { ++ArithStats::Local().big_ops; }

}  // namespace

BigInt::MagView BigInt::View() const {
  MagView v;
  if (small_rep_) {
    v.negative = small_ < 0;
    uint64_t u = Abs64(small_);
    if (u) v.storage.push_back(static_cast<uint32_t>(u & 0xffffffffULL));
    if (u >> 32) v.storage.push_back(static_cast<uint32_t>(u >> 32));
    v.inline_rep = true;
  } else {
    v.negative = negative_;
    v.heap = &mag_;
    v.inline_rep = false;
  }
  return v;
}

BigInt BigInt::FromMagU64(bool negative, uint64_t mag) {
  if (mag <= (negative ? 0x8000000000000000ULL : 0x7fffffffffffffffULL)) {
    // ~mag + 1 is two's-complement negation; the cast is defined in C++20.
    return BigInt(negative ? static_cast<int64_t>(~mag + 1)
                           : static_cast<int64_t>(mag));
  }
  BigInt out;
  out.small_rep_ = false;
  out.negative_ = negative;
  out.mag_.push_back(static_cast<uint32_t>(mag & 0xffffffffULL));
  if (mag >> 32) out.mag_.push_back(static_cast<uint32_t>(mag >> 32));
  return out;
}

BigInt BigInt::FromMag(bool negative, std::vector<uint32_t> mag) {
  TrimMag(&mag);
  if (mag.size() <= 2) {
    uint64_t u = mag.empty() ? 0 : mag[0];
    if (mag.size() == 2) u |= static_cast<uint64_t>(mag[1]) << 32;
    return FromMagU64(negative, u);
  }
  BigInt out;
  out.small_rep_ = false;
  out.negative_ = negative;
  out.mag_ = std::move(mag);
  return out;
}

void BigInt::TrimMag(std::vector<uint32_t>* m) {
  while (!m->empty() && m->back() == 0) m->pop_back();
}

int BigInt::CompareMag(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigInt::AddMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  const std::vector<uint32_t>& lo = a.size() < b.size() ? a : b;
  const std::vector<uint32_t>& hi = a.size() < b.size() ? b : a;
  std::vector<uint32_t> out;
  out.reserve(hi.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < hi.size(); ++i) {
    uint64_t sum = carry + hi[i] + (i < lo.size() ? lo[i] : 0);
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  TrimMag(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(out[i + j]) +
                     static_cast<uint64_t>(a[i]) * b[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = static_cast<uint64_t>(out[k]) + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  TrimMag(&out);
  return out;
}

void BigInt::DivModMag(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b,
                       std::vector<uint32_t>* q, std::vector<uint32_t>* r) {
  q->clear();
  r->clear();
  if (CompareMag(a, b) < 0) {
    *r = a;
    TrimMag(r);
    return;
  }
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    uint64_t d = b[0];
    q->assign(a.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a[i];
      (*q)[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    TrimMag(q);
    if (rem) r->push_back(static_cast<uint32_t>(rem));
    return;
  }
  // Knuth algorithm D with normalization so the divisor's top limb has its
  // high bit set; quotient digit estimates are then off by at most 2.
  int shift = 0;
  uint32_t top = b.back();
  while (!(top & 0x80000000U)) {
    top <<= 1;
    ++shift;
  }
  auto shl = [shift](const std::vector<uint32_t>& v) {
    if (shift == 0) return v;
    std::vector<uint32_t> out(v.size() + 1, 0);
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << shift;
      out[i + 1] |= static_cast<uint32_t>(
          (static_cast<uint64_t>(v[i]) >> (32 - shift)));
    }
    TrimMag(&out);
    return out;
  };
  std::vector<uint32_t> u = shl(a);
  std::vector<uint32_t> v = shl(b);
  size_t n = v.size();
  size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);
  q->assign(m + 1, 0);
  for (size_t j = m + 1; j-- > 0;) {
    uint64_t numer = (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = numer / v[n - 1];
    uint64_t rhat = numer % v[n - 1];
    while (qhat >= kBase ||
           (n >= 2 &&
            qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2]))) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-subtract qhat*v from u[j..j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(p & 0xffffffffULL) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    if (diff < 0) {
      // qhat was one too large: add back.
      diff += static_cast<int64_t>(kBase);
      u[j + n] = static_cast<uint32_t>(diff);
      --qhat;
      uint64_t c2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<uint32_t>(sum & 0xffffffffULL);
        c2 = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + c2);
    } else {
      u[j + n] = static_cast<uint32_t>(diff);
    }
    (*q)[j] = static_cast<uint32_t>(qhat);
  }
  TrimMag(q);
  // Remainder: u[0..n) shifted back.
  u.resize(n);
  if (shift) {
    for (size_t i = 0; i < n; ++i) {
      u[i] >>= shift;
      if (i + 1 < n) {
        u[i] |= static_cast<uint32_t>(
            static_cast<uint64_t>(u[i + 1] & ((1U << shift) - 1)) << (32 - shift));
      }
    }
  }
  TrimMag(&u);
  *r = std::move(u);
}

Result<BigInt> BigInt::FromString(const std::string& text) {
  if (text.empty()) return Status::ParseError("empty BigInt literal");
  size_t i = 0;
  bool neg = false;
  if (text[0] == '+' || text[0] == '-') {
    neg = text[0] == '-';
    i = 1;
  }
  if (i >= text.size()) return Status::ParseError("sign with no digits");
  BigInt out;
  for (; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') {
      return Status::ParseError("bad digit in BigInt literal: " + text);
    }
    out = out * BigInt(10) + BigInt(text[i] - '0');
  }
  return neg ? -out : out;
}

std::string BigInt::ToString() const {
  if (small_rep_) return std::to_string(small_);
  std::vector<uint32_t> cur = mag_;
  std::string digits;
  std::vector<uint32_t> q, r;
  const std::vector<uint32_t> billion = {1000000000U};
  while (!cur.empty()) {
    DivModMag(cur, billion, &q, &r);
    uint32_t chunk = r.empty() ? 0 : r[0];
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
    cur = q;
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

Result<int64_t> BigInt::ToInt64() const {
  // The representation is canonical: heap-backed values are out of range.
  if (small_rep_) return small_;
  return Status::Overflow("BigInt exceeds int64 range");
}

double BigInt::ToDouble() const {
  if (small_rep_) return static_cast<double>(small_);
  double out = 0;
  for (size_t i = mag_.size(); i-- > 0;) {
    out = out * 4294967296.0 + mag_[i];
  }
  return negative_ ? -out : out;
}

size_t BigInt::BitLength() const {
  if (small_rep_) {
    uint64_t u = Abs64(small_);
    return u == 0 ? 0 : 64 - static_cast<size_t>(__builtin_clzll(u));
  }
  uint32_t top = mag_.back();
  size_t bits = (mag_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

BigInt BigInt::operator-() const {
  if (small_rep_) {
    if (small_ != INT64_MIN) return BigInt(-small_);
    return FromMagU64(false, 0x8000000000000000ULL);
  }
  return FromMag(!negative_, mag_);
}

BigInt BigInt::Abs() const {
  if (small_rep_) {
    if (small_ != INT64_MIN) return BigInt(small_ < 0 ? -small_ : small_);
    return FromMagU64(false, 0x8000000000000000ULL);
  }
  return FromMag(false, mag_);
}

BigInt BigInt::operator+(const BigInt& o) const {
  // Failpoint: steer the addition into the limb (heap) path as if the
  // inline int64 fast path had overflowed; the magnitude arithmetic must
  // produce the identical canonical value.
  bool force_slow = false;
  FO2DT_FAILPOINT(names::kFpBigintForceSlowAdd, &force_slow);
  if (!force_slow && small_rep_ && o.small_rep_) {
    int64_t r;
    if (!__builtin_add_overflow(small_, o.small_, &r)) {
      CountSmall();
      return BigInt(r);
    }
  }
  CountBig();
  MagView a = View();
  MagView b = o.View();
  if (a.negative == b.negative) {
    return FromMag(a.negative, AddMag(a.mag(), b.mag()));
  }
  int c = CompareMag(a.mag(), b.mag());
  if (c == 0) return BigInt();
  if (c > 0) return FromMag(a.negative, SubMag(a.mag(), b.mag()));
  return FromMag(b.negative, SubMag(b.mag(), a.mag()));
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (small_rep_ && o.small_rep_) {
    int64_t r;
    if (!__builtin_sub_overflow(small_, o.small_, &r)) {
      CountSmall();
      return BigInt(r);
    }
  }
  return *this + (-o);
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (small_rep_ && o.small_rep_) {
    int64_t r;
    if (!__builtin_mul_overflow(small_, o.small_, &r)) {
      CountSmall();
      return BigInt(r);
    }
  }
  CountBig();
  MagView a = View();
  MagView b = o.View();
  return FromMag(a.negative != b.negative, MulMag(a.mag(), b.mag()));
}

BigInt BigInt::operator/(const BigInt& o) const {
  if (small_rep_ && o.small_rep_) {
    // INT64_MIN / -1 is the lone overflowing quotient.
    if (!(small_ == INT64_MIN && o.small_ == -1)) {
      CountSmall();
      return BigInt(small_ / o.small_);
    }
  }
  CountBig();
  MagView a = View();
  MagView b = o.View();
  std::vector<uint32_t> qm, rm;
  DivModMag(a.mag(), b.mag(), &qm, &rm);
  return FromMag(a.negative != b.negative, std::move(qm));
}

BigInt BigInt::operator%(const BigInt& o) const {
  if (small_rep_ && o.small_rep_) {
    CountSmall();
    // INT64_MIN % -1 overflows in hardware; the result is 0.
    if (o.small_ == -1) return BigInt(0);
    return BigInt(small_ % o.small_);
  }
  CountBig();
  MagView a = View();
  MagView b = o.View();
  std::vector<uint32_t> qm, rm;
  DivModMag(a.mag(), b.mag(), &qm, &rm);
  return FromMag(a.negative, std::move(rm));
}

int BigInt::CompareSlow(const BigInt& o) const {
  MagView a = View();
  MagView b = o.View();
  bool a_neg = a.negative && !a.mag().empty();
  bool b_neg = b.negative && !b.mag().empty();
  if (a_neg != b_neg) return a_neg ? -1 : 1;
  int c = CompareMag(a.mag(), b.mag());
  return a_neg ? -c : c;
}

BigInt BigInt::FloorDiv(const BigInt& o) const {
  BigInt q = *this / o;
  BigInt r = *this % o;
  if (!r.IsZero() && (r.IsNegative() != o.IsNegative())) q -= BigInt(1);
  return q;
}

BigInt BigInt::CeilDiv(const BigInt& o) const {
  BigInt q = *this / o;
  BigInt r = *this % o;
  if (!r.IsZero() && (r.IsNegative() == o.IsNegative())) q += BigInt(1);
  return q;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  if (a.small_rep_ && b.small_rep_) {
    CountSmall();
    uint64_t x = Abs64(a.small_);
    uint64_t y = Abs64(b.small_);
    while (y) {
      uint64_t t = x % y;
      x = y;
      y = t;
    }
    return FromMagU64(false, x);
  }
  CountBig();
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = y;
    y = r;
  }
  return x;
}

size_t BigInt::Hash() const {
  if (small_rep_) {
    uint64_t z = static_cast<uint64_t>(small_) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<size_t>(z ^ (z >> 27));
  }
  size_t h = negative_ ? 0x9e3779b97f4a7c15ULL : 0;
  for (uint32_t limb : mag_) {
    h ^= limb + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToString();
}

}  // namespace fo2dt
