// F2 (Figure 2): the interval taxonomy driving the small-model property.
// Generates sibling sequences with controlled run lengths and measures the
// decomposition into maximal pure intervals plus the (M,N)-reducedness
// check. Shape to observe: interval counts equal ceil(n / run_length), and
// reducedness checking is linear in the tree.

#include <benchmark/benchmark.h>

#include "datatree/generator.h"
#include "datatree/zones.h"

namespace fo2dt {
namespace {

void BM_MaximalPureIntervals(benchmark::State& state) {
  Alphabet alpha;
  DataTree t = FlatRunsTree(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)), &alpha);
  size_t intervals = 0;
  for (auto _ : state) {
    auto iv = MaximalPureIntervals(t);
    intervals = iv.size();
    benchmark::DoNotOptimize(iv);
  }
  state.counters["intervals"] = static_cast<double>(intervals);
}
BENCHMARK(BM_MaximalPureIntervals)
    ->Args({1000, 1})
    ->Args({1000, 10})
    ->Args({1000, 100})
    ->Args({100000, 10});

void BM_ShapeStats(benchmark::State& state) {
  Alphabet alpha;
  DataTree t = CombTree(static_cast<size_t>(state.range(0)), 3, 5, &alpha);
  for (auto _ : state) {
    TreeShapeStats s = ComputeShapeStats(t);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ShapeStats)->Arg(100)->Arg(1000)->Arg(10000);

void BM_IsReduced(benchmark::State& state) {
  Alphabet alpha;
  DataTree t = FlatRunsTree(static_cast<size_t>(state.range(0)), 7, &alpha);
  for (auto _ : state) {
    bool reduced = IsReduced(t, 3, 10);
    benchmark::DoNotOptimize(reduced);
  }
}
BENCHMARK(BM_IsReduced)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace fo2dt

BENCHMARK_MAIN();
