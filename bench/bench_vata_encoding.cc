// F4 (Figure 4): the Theorem-4 counter-tree coding. Measures (i) bounded
// VATA emptiness search (exponential in the size bound — the paper's point:
// nobody knows a terminating general procedure), (ii) construction of the
// counter tree from a run and (iii) model checking the discipline formula on
// it. Shape to observe: the formula size is linear in the number of
// counters, the coding size linear in the run's total counter traffic.

#include <benchmark/benchmark.h>

#include "logic/eval.h"
#include "vata/vata.h"

namespace fo2dt {
namespace {

// k-counter generalization of the example automaton: leaves produce one
// token of every counter; inner nodes consume one of each from both children
// and either re-emit (q0) or close (q1, accepting).
VataAutomaton MakeVata(size_t k) {
  VataAutomaton a;
  a.num_counters = k;
  a.num_states = 2;
  a.num_labels = 2;
  a.accepting = {1};
  CounterVec ones(k, 1);
  CounterVec zeros(k, 0);
  a.leaf_rules.push_back({1, 0, ones});
  a.transitions.push_back({0, 0, ones, 0, ones, 0, ones});
  a.transitions.push_back({0, 0, ones, 0, ones, 1, zeros});
  return a;
}

void BM_BoundedEmptiness(benchmark::State& state) {
  VataAutomaton a = MakeVata(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto w = FindVataWitnessBounded(a, static_cast<size_t>(state.range(1)));
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_BoundedEmptiness)
    ->Args({1, 3})
    ->Args({1, 5})
    ->Args({1, 7})
    ->Args({3, 5})
    ->Args({6, 5});

void BM_BuildCounterTree(benchmark::State& state) {
  VataAutomaton a = MakeVata(static_cast<size_t>(state.range(0)));
  auto w = FindVataWitnessBounded(a, 7);
  if (!w.ok()) {
    state.SkipWithError("no witness");
    return;
  }
  CounterTreeAlphabet alpha{a.num_counters, a.num_states, a.num_labels};
  size_t nodes = 0;
  for (auto _ : state) {
    DataTree ct = *BuildCounterTree(a, w->first, w->second, alpha);
    nodes = ct.size();
    benchmark::DoNotOptimize(ct);
  }
  state.counters["counter_tree_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_BuildCounterTree)->Arg(1)->Arg(3)->Arg(6);

void BM_CheckDiscipline(benchmark::State& state) {
  VataAutomaton a = MakeVata(static_cast<size_t>(state.range(0)));
  auto w = FindVataWitnessBounded(a, 7);
  if (!w.ok()) {
    state.SkipWithError("no witness");
    return;
  }
  CounterTreeAlphabet alpha{a.num_counters, a.num_states, a.num_labels};
  DataTree ct = *BuildCounterTree(a, w->first, w->second, alpha);
  Formula phi = EncodeVataToFo2(a, alpha);
  for (auto _ : state) {
    bool ok = *Evaluator::EvaluateSentence(phi, ct, nullptr);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_CheckDiscipline)->Arg(1)->Arg(3)->Arg(6);

}  // namespace
}  // namespace fo2dt

BENCHMARK_MAIN();
