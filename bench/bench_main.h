// Shared benchmark entry point. Replaces BENCHMARK_MAIN() so the bench
// binaries accept one extra flag the google-benchmark flag parser would
// otherwise reject:
//
//   --trace-json=<path>   after the run, dump the observability state
//                         (MetricsRegistry snapshot + recorded trace spans
//                         in Chrome trace-event form) as JSON to <path>.
//
// Span recording only happens when the build compiled the fine-grained
// spans in (FO2DT_TRACE); in release builds the file still carries the
// metrics snapshot and an empty traceEvents list.

#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/registry_names.h"
#include "common/solve_cache.h"
#include "common/trace.h"

namespace fo2dt {

/// Attaches per-phase self-time and effort counters accumulated over the
/// timing loop. Call PhaseStats::Reset() before the loop and this after it;
/// values are per iteration. Only phases that actually ran get counters.
inline void ReportPhaseCounters(benchmark::State& state) {
  PhaseCounters agg = PhaseStats::Aggregate();
  double iters = static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  for (size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseCounters::Entry& e = agg.phases[i];
    if (e.calls == 0) continue;
    const char* name = PhaseName(static_cast<Phase>(i));
    state.counters[std::string("phase_") + name + "_ms"] =
        static_cast<double>(e.wall_ns) / 1e6 / iters;
    state.counters[std::string("phase_") + name + "_effort"] =
        static_cast<double>(e.effort) / iters;
  }
}

/// Attaches the solve-cache hit/miss counters accumulated over the timing
/// loop (verdict-cache and sub-memo lookups combined), per iteration. Pass a
/// SolveCache::Instance().stats() snapshot taken before the loop — the
/// cache's counters are cumulative across the whole binary. Counter names
/// come from the generated registry (`bench_counters.extras`), so the BENCH
/// grammar check and fo2dt_report recognize them.
inline void ReportCacheCounters(benchmark::State& state,
                                const SolveCache::Stats& before) {
  SolveCache::Stats now = SolveCache::Instance().stats();
  double iters = static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  state.counters[names::kBenchExtraCacheHits] =
      static_cast<double>((now.solve_hits + now.sub_hits) -
                          (before.solve_hits + before.sub_hits)) /
      iters;
  state.counters[names::kBenchExtraCacheMisses] =
      static_cast<double>((now.solve_misses + now.sub_misses) -
                          (before.solve_misses + before.sub_misses)) /
      iters;
}

/// Attaches solve-latency percentiles (solve_ms_p50/p95/p99, names owned by
/// the registry's bench_counters.extras) derived from \p latency. The
/// histogram holds per-solve *microsecond* samples — its log2 buckets then
/// resolve sub-millisecond solves — and the counters convert back to
/// milliseconds to match every other time counter in the report.
inline void ReportSolveLatency(benchmark::State& state,
                               const Histogram& latency) {
  HistogramSnapshot snap = latency.Snapshot();
  state.counters[names::kBenchExtraSolveMsP50] = snap.Percentile(50) / 1e3;
  state.counters[names::kBenchExtraSolveMsP95] = snap.Percentile(95) / 1e3;
  state.counters[names::kBenchExtraSolveMsP99] = snap.Percentile(99) / 1e3;
}

/// Microseconds elapsed since \p start (per-solve latency samples).
inline uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

namespace bench_internal {

inline bool WriteObservabilityJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  std::vector<TraceEvent> events = TraceRecorder::Instance().Snapshot();
  std::fprintf(f, "{\n\"metrics\": %s,\n\"traceEvents\": [", snap.ToJson().c_str());
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::fprintf(
        f,
        "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"id\":%llu,\"parent\":%llu}}",
        i == 0 ? "" : ",", e.name, e.thread,
        static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(e.end_ns - e.start_ns) / 1e3,
        static_cast<unsigned long long>(e.id),
        static_cast<unsigned long long>(e.parent));
  }
  std::fprintf(f, "\n],\n\"dropped\": %llu\n}\n",
               static_cast<unsigned long long>(
                   TraceRecorder::Instance().dropped()));
  std::fclose(f);
  return true;
}

inline int BenchMain(int argc, char** argv) {
  constexpr char kTraceFlag[] = "--trace-json=";
  std::string trace_path;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], kTraceFlag, sizeof(kTraceFlag) - 1) == 0) {
      trace_path = argv[i] + (sizeof(kTraceFlag) - 1);
    } else {
      args.push_back(argv[i]);
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  if (!trace_path.empty()) TraceRecorder::Instance().SetEnabled(true);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_path.empty() &&
      !bench_internal::WriteObservabilityJson(trace_path)) {
    std::fprintf(stderr, "error: cannot write trace JSON to %s\n",
                 trace_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace bench_internal
}  // namespace fo2dt

#define FO2DT_BENCH_MAIN()                       \
  int main(int argc, char** argv) {              \
    return ::fo2dt::bench_internal::BenchMain(argc, argv); \
  }

