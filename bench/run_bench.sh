#!/usr/bin/env bash
# Runs the two solver-core benchmarks and writes their JSON reports to the
# repo root (BENCH_lcta.json, BENCH_constraints.json). These files are
# committed so the performance trajectory of the exact Presburger core is
# reviewable per PR; see EXPERIMENTS.md for how to regenerate and compare.
#
# Each report now carries per-phase breakdowns (phase_<name>_ms /
# phase_<name>_effort counters) from the observability layer; the raw
# span/metrics dump of each run goes to <build-dir>/bench/TRACE_*.json and
# is not committed.
#
# Usage: bench/run_bench.sh [build-dir]    (default: ./build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Publish this build's compile database for the analysis tools unless the
# caller already pinned one: fo2dt_lint.py --deep and run_clang_tidy.sh both
# resolve $FO2DT_COMPILE_DB first (then build-lint, then build), so a bench
# job followed by lint/tidy analyzes exactly the configuration it measured.
if [[ -z "${FO2DT_COMPILE_DB:-}" && -f "$BUILD_DIR/compile_commands.json" ]]; then
  export FO2DT_COMPILE_DB="$BUILD_DIR"
fi

if [[ ! -x "$BUILD_DIR/bench/bench_lcta_emptiness" ]]; then
  echo "error: $BUILD_DIR/bench/bench_lcta_emptiness not built." >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# min_time keeps the slow grid points bounded while still averaging the fast
# ones over many iterations (google-benchmark wants a plain double here).
MIN_TIME="${BENCH_MIN_TIME:-0.1}"

# Per-benchmark wall-clock guard: a perf regression (or a hang in the solver
# core) must fail the bench job loudly instead of wedging it. Override with
# BENCH_TIMEOUT_SECS for slow machines.
TIMEOUT_SECS="${BENCH_TIMEOUT_SECS:-600}"

# Query-log pass-through: when the caller exports FO2DT_QUERY_LOG, each bench
# binary appends its facade solves to a per-binary JSONL derived from it
# (<base>_lcta.jsonl / <base>_constraints.jsonl), so fo2dt_report can compute
# per-workload cache hit rates without two binaries interleaving one file.
QUERY_LOG_BASE="${FO2DT_QUERY_LOG:-}"
query_log_for() {
  local tag="$1"
  if [[ -z "$QUERY_LOG_BASE" ]]; then
    echo ""
  else
    echo "${QUERY_LOG_BASE%.jsonl}_${tag}.jsonl"
  fi
}

# Writes to a temp file and renames on success, so a timeout/crash can never
# leave a partial or stale report behind: the target either keeps its old
# content (and the run fails) or gets the complete new one.
run_guarded() {
  local out="$1"
  shift
  local tmp
  tmp="$(mktemp "${out}.XXXXXX.tmp")"
  trap 'rm -f "$tmp"' RETURN
  local rc=0
  timeout --kill-after=10 "$TIMEOUT_SECS" "$@" > "$tmp" || rc=$?
  if [[ "$rc" -eq 124 || "$rc" -eq 137 ]]; then
    echo "TIMEOUT: benchmark '$1' exceeded ${TIMEOUT_SECS}s; $out left untouched" >&2
    rm -f "$tmp"
    exit 1
  fi
  if [[ "$rc" -ne 0 ]]; then
    echo "error: benchmark '$1' failed (exit $rc); $out left untouched" >&2
    rm -f "$tmp"
    exit 1
  fi
  mv "$tmp" "$out"
}

FO2DT_QUERY_LOG="$(query_log_for lcta)" \
run_guarded BENCH_lcta.json "$BUILD_DIR/bench/bench_lcta_emptiness" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json \
  --trace-json="$BUILD_DIR/bench/TRACE_lcta.json"

FO2DT_QUERY_LOG="$(query_log_for constraints)" \
run_guarded BENCH_constraints.json "$BUILD_DIR/bench/bench_constraints" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json \
  --trace-json="$BUILD_DIR/bench/TRACE_constraints.json"

# A benchmark that self-skips (state.SkipWithError) surfaces in the
# google-benchmark JSON as error_occurred / a skip message, with garbage or
# zero counters. Mark those entries with an explicit "skipped": true so
# downstream tooling (tools/report/fo2dt_report.py) can exclude them without
# knowing google-benchmark's error convention — and so a skip is visible in
# the committed diff instead of silently polluting the phase aggregates.
mark_skipped() {
  python3 - "$1" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
marked = 0
for entry in data.get("benchmarks", []):
    if entry.get("error_occurred") or entry.get("skipped"):
        if entry.get("skipped") is not True:
            entry["skipped"] = True
            marked += 1
with open(path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
if marked:
    print("%s: marked %d self-skipped benchmark entr%s" %
          (path, marked, "y" if marked == 1 else "ies"))
EOF
}
mark_skipped BENCH_lcta.json
mark_skipped BENCH_constraints.json

# The committed reports must carry the per-phase breakdown; catch a silent
# regression (e.g. a bench binary that dropped its ReportPhaseCounters call).
for f in BENCH_lcta.json BENCH_constraints.json; do
  if ! grep -q '"phase_' "$f"; then
    echo "error: $f has no per-phase counters (phase_*_ms)" >&2
    exit 1
  fi
done

# Same for the solve-cache counters and the histogram-derived solve-latency
# percentiles: the repeated-workload benchmarks must report
# cache_hits/cache_misses and solve_ms_p50/p95/p99 (names owned by the
# registry's bench_counters.extras), so the committed history shows hit
# rates and the latency tail per grid point and fo2dt_report can gate on
# them.
for f in BENCH_lcta.json BENCH_constraints.json; do
  for counter in cache_hits cache_misses \
                 solve_ms_p50 solve_ms_p95 solve_ms_p99; do
    if ! grep -q "\"$counter\"" "$f"; then
      echo "error: $f has no $counter counter (ReportCacheCounters or" \
           "ReportSolveLatency missing?)" >&2
      exit 1
    fi
  done
done

echo "wrote BENCH_lcta.json and BENCH_constraints.json"
if [[ -n "$QUERY_LOG_BASE" ]]; then
  echo "query logs: $(query_log_for lcta) and $(query_log_for constraints)"
fi
