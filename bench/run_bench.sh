#!/usr/bin/env bash
# Runs the two solver-core benchmarks and writes their JSON reports to the
# repo root (BENCH_lcta.json, BENCH_constraints.json). These files are
# committed so the performance trajectory of the exact Presburger core is
# reviewable per PR; see EXPERIMENTS.md for how to regenerate and compare.
#
# Usage: bench/run_bench.sh [build-dir]    (default: ./build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -x "$BUILD_DIR/bench/bench_lcta_emptiness" ]]; then
  echo "error: $BUILD_DIR/bench/bench_lcta_emptiness not built." >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# min_time keeps the slow grid points bounded while still averaging the fast
# ones over many iterations (google-benchmark wants a plain double here).
MIN_TIME="${BENCH_MIN_TIME:-0.1}"

# Per-benchmark wall-clock guard: a perf regression (or a hang in the solver
# core) must fail the bench job loudly instead of wedging it. Override with
# BENCH_TIMEOUT_SECS for slow machines.
TIMEOUT_SECS="${BENCH_TIMEOUT_SECS:-600}"

run_guarded() {
  local out="$1"
  shift
  if ! timeout --kill-after=10 "$TIMEOUT_SECS" "$@" > "$out"; then
    echo "error: benchmark '$1' exceeded ${TIMEOUT_SECS}s (or crashed); $out is stale" >&2
    exit 1
  fi
}

run_guarded BENCH_lcta.json "$BUILD_DIR/bench/bench_lcta_emptiness" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json

run_guarded BENCH_constraints.json "$BUILD_DIR/bench/bench_constraints" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json

echo "wrote BENCH_lcta.json and BENCH_constraints.json"
