// TH2 (Theorem 2): LCTA emptiness is in NPTIME. Measures the
// Parikh/flow-ILP procedure as the automaton's state count and the linear
// constraints grow, against the brute-force tree enumeration baseline
// (exponential in witness size). Shape to observe: the ILP route scales
// polynomially-with-NP-spikes and overtakes brute force as soon as minimal
// witnesses have more than a handful of nodes (the paper's reason for
// Theorem 2: counting, not enumeration).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "arith/arith_stats.h"
#include "bench_main.h"
#include "lcta/lcta.h"
#include "solverlp/simplex.h"

namespace fo2dt {
namespace {

// Attaches the solver-core counters (simplex effort, warm-start hit rate,
// BigInt small-int fast-path rate) accumulated over the timing loop.
void ReportSolverCounters(benchmark::State& state) {
  SimplexCounters sx = SimplexStats::Aggregate();
  ArithCounters ar = ArithStats::Aggregate();
  double iters = static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  state.counters["pivots"] = static_cast<double>(sx.pivots) / iters;
  state.counters["tableau_builds"] =
      static_cast<double>(sx.tableau_builds) / iters;
  state.counters["warm_start_hit_rate"] = sx.WarmStartHitRate();
  state.counters["arith_fast_path_rate"] = ar.FastPathRate();
}

// Flat trees with k leaf kinds under one root; the constraint demands equal
// counts of all kinds and at least `m` of the first — minimal witnesses have
// k*m + 1 nodes.
Lcta MakeLcta(size_t kinds, int64_t m) {
  TreeAutomaton a(kinds, kinds + 1);
  const TreeState root = static_cast<TreeState>(kinds);
  for (TreeState s = 0; s < kinds; ++s) {
    a.SetInitial(s);
    for (TreeState s2 = 0; s2 < kinds; ++s2) {
      a.AddHorizontal(s, s, s2);
    }
    a.AddVertical(s, s, root);
  }
  a.SetAccepting(root, 0);
  std::vector<LinearConstraint> parts;
  for (TreeState s = 1; s < kinds; ++s) {
    LinearExpr diff = LinearExpr::Variable(0);
    diff.AddTerm(s, BigInt(-1));
    parts.push_back(LinearConstraint::Eq(std::move(diff)));
  }
  LinearExpr at_least = LinearExpr::Variable(0);
  at_least.AddConstant(BigInt(-m));
  parts.push_back(LinearConstraint::Ge(std::move(at_least)));
  return Lcta{a, LinearConstraint::And(std::move(parts))};
}

void BM_ParikhIlp(benchmark::State& state) {
  Lcta lcta = MakeLcta(static_cast<size_t>(state.range(0)), state.range(1));
  SimplexStats::Reset();
  ArithStats::Reset();
  PhaseStats::Reset();
  for (auto _ : state) {
    auto r = CheckLctaEmptiness(lcta);
    benchmark::DoNotOptimize(r);
    if (r.ok()) state.counters["ilp_nodes"] = static_cast<double>(r->ilp_nodes);
  }
  ReportSolverCounters(state);
  ReportPhaseCounters(state);
}
BENCHMARK(BM_ParikhIlp)
    ->Args({2, 1})
    ->Args({2, 4})
    ->Args({2, 16})
    ->Args({3, 4})
    ->Args({4, 4})
    ->Args({5, 4});

void BM_BruteForceBaseline(benchmark::State& state) {
  Lcta lcta = MakeLcta(static_cast<size_t>(state.range(0)), state.range(1));
  size_t witness_bound =
      static_cast<size_t>(state.range(0) * state.range(1)) + 1;
  PhaseStats::Reset();
  for (auto _ : state) {
    auto w = FindLctaWitnessBounded(lcta, witness_bound);
    benchmark::DoNotOptimize(w);
  }
  ReportPhaseCounters(state);
}
// The baseline explodes quickly; keep the grid small.
BENCHMARK(BM_BruteForceBaseline)->Args({2, 1})->Args({2, 2})->Args({3, 2});

void BM_EmptyVerdict(benchmark::State& state) {
  // Unsatisfiable counting constraint: n_root == 2.
  Lcta lcta = MakeLcta(2, 1);
  LinearExpr root_twice = LinearExpr::Variable(2);
  root_twice.AddConstant(BigInt(-2));
  lcta.constraint = LinearConstraint::And(lcta.constraint,
                                          LinearConstraint::Eq(root_twice));
  SimplexStats::Reset();
  ArithStats::Reset();
  PhaseStats::Reset();
  for (auto _ : state) {
    auto r = CheckLctaEmptiness(lcta);
    benchmark::DoNotOptimize(r);
  }
  ReportSolverCounters(state);
  ReportPhaseCounters(state);
}
BENCHMARK(BM_EmptyVerdict);

// Repeated traffic over one schema: the largest grid automaton (5 kinds)
// with kRepeatedVariants distinct-but-equicost constraint variants. Variant
// i adds the non-binding upper bound n_0 <= 4 + i, so every variant keys its
// own cache entry while verdict and search shape stay comparable. The cold
// run is the first-pass cost with caching at its default (disabled); the
// warm run enables the solve cache, populates it once, and times the second
// pass — the BENCH acceptance gate wants >= 5x between the two.
constexpr size_t kRepeatedVariants = 128;

Lcta MakeRepeatedVariant(size_t i) {
  Lcta lcta = MakeLcta(5, 4);
  LinearExpr upper;
  upper.AddTerm(0, BigInt(-1));
  upper.AddConstant(BigInt(static_cast<int64_t>(4 + i)));
  lcta.constraint = LinearConstraint::And(lcta.constraint,
                                          LinearConstraint::Ge(std::move(upper)));
  return lcta;
}

void RunRepeatedWorkload(Histogram* latency = nullptr) {
  for (size_t i = 0; i < kRepeatedVariants; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto r = CheckLctaEmptiness(MakeRepeatedVariant(i));
    if (latency != nullptr) latency->Record(MicrosSince(start));
    benchmark::DoNotOptimize(r);
  }
}

void BM_RepeatedWorkloadCold(benchmark::State& state) {
  SimplexStats::Reset();
  ArithStats::Reset();
  PhaseStats::Reset();
  SolveCache::Stats before = SolveCache::Instance().stats();
  Histogram latency{names::kMetricHistSolveWallMs};
  for (auto _ : state) RunRepeatedWorkload(&latency);
  ReportCacheCounters(state, before);
  ReportSolveLatency(state, latency);
  ReportSolverCounters(state);
  ReportPhaseCounters(state);
}
BENCHMARK(BM_RepeatedWorkloadCold);

// Registered (and therefore run) after the cold variant: it leaves the
// process-wide cache enabled and populated so repeated invocations of the
// benchmark function stay on the second-pass path.
void BM_RepeatedWorkloadWarm(benchmark::State& state) {
  SolveCache& cache = SolveCache::Instance();
  if (!cache.enabled()) {
    SolveCacheConfig config;
    config.enabled = true;
    cache.Configure(config);
  }
  if (cache.stats().entries == 0) RunRepeatedWorkload();  // populate pass
  SimplexStats::Reset();
  ArithStats::Reset();
  PhaseStats::Reset();
  SolveCache::Stats before = cache.stats();
  Histogram latency{names::kMetricHistSolveWallMs};
  for (auto _ : state) RunRepeatedWorkload(&latency);
  ReportCacheCounters(state, before);
  ReportSolveLatency(state, latency);
  ReportSolverCounters(state);
  ReportPhaseCounters(state);
}
BENCHMARK(BM_RepeatedWorkloadWarm);

}  // namespace
}  // namespace fo2dt

FO2DT_BENCH_MAIN();
