// F1 (Figure 1): zones and automaton runs. Measures the substrate that the
// whole decision procedure stands on: computing the zone partition of data
// trees (union-find over same-data edges) and finding accepting automaton
// runs, as tree size and data-value density vary. The shape to observe:
// both scale near-linearly in the node count, and zone counts interpolate
// between 1 (one value everywhere) and n (all fresh values).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "automata/tree_automaton.h"
#include "common/random.h"
#include "datatree/generator.h"
#include "datatree/zones.h"

namespace fo2dt {
namespace {

DataTree MakeTree(size_t nodes, double copy_prob, Alphabet* alpha,
                  uint64_t seed) {
  RandomSource rng(seed);
  RandomTreeOptions opt;
  opt.num_nodes = nodes;
  opt.num_labels = 3;
  opt.num_data_values = nodes / 4 + 1;
  opt.data_copy_parent = copy_prob;
  opt.data_copy_left = copy_prob;
  return RandomDataTree(opt, &rng, alpha);
}

void BM_ComputeZones(benchmark::State& state) {
  Alphabet alpha;
  DataTree t = MakeTree(static_cast<size_t>(state.range(0)),
                        static_cast<double>(state.range(1)) / 100.0, &alpha, 42);
  size_t zones = 0;
  for (auto _ : state) {
    ZonePartition z = ComputeZones(t);
    zones = z.num_zones();
    benchmark::DoNotOptimize(z);
  }
  state.counters["zones"] = static_cast<double>(zones);
  state.counters["nodes"] = static_cast<double>(t.size());
}
BENCHMARK(BM_ComputeZones)
    ->Args({100, 30})
    ->Args({1000, 30})
    ->Args({10000, 30})
    ->Args({10000, 0})
    ->Args({10000, 90});

void BM_ProfiledTree(benchmark::State& state) {
  Alphabet alpha;
  DataTree t = MakeTree(static_cast<size_t>(state.range(0)), 0.3, &alpha, 7);
  for (auto _ : state) {
    Alphabet profiled;
    DataTree pt = BuildProfiledTree(t, alpha, &profiled);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_ProfiledTree)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FindAcceptingRun(benchmark::State& state) {
  Alphabet alpha;
  DataTree t = MakeTree(static_cast<size_t>(state.range(0)), 0.3, &alpha, 11);
  TreeAutomaton universal = TreeAutomaton::Universal(3);
  for (auto _ : state) {
    auto run = universal.FindAcceptingRun(t);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_FindAcceptingRun)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MaximalDataPaths(benchmark::State& state) {
  Alphabet alpha;
  DataTree t = MakeTree(static_cast<size_t>(state.range(0)), 0.5, &alpha, 13);
  for (auto _ : state) {
    auto paths = MaximalDataPaths(t);
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_MaximalDataPaths)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace fo2dt

BENCHMARK_MAIN();
