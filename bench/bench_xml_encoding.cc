// F3 (Figure 3): the XML ↔ data-tree encoding and document-level constraint
// checking on schedule-style documents scaled by the number of courses.
// Shape to observe: encoding and checking are linear in document size.

#include <benchmark/benchmark.h>

#include <string>

#include "constraints/constraints.h"
#include "xmlenc/xml.h"

namespace fo2dt {
namespace {

std::string ScheduleXml(size_t courses) {
  std::string xml = "<schedule>";
  for (size_t i = 0; i < courses; ++i) {
    xml += "<course ID=\"" + std::to_string(i) + "\"><lecturer faculty=\"" +
           std::to_string(i % 17) + "\"></lecturer><building nr=\"" +
           std::to_string(i % 5) + "\"></building></course>";
  }
  xml += "</schedule>";
  return xml;
}

void BM_ParseAndEncode(benchmark::State& state) {
  std::string xml = ScheduleXml(static_cast<size_t>(state.range(0)));
  size_t nodes = 0;
  for (auto _ : state) {
    Alphabet labels;
    ValueDictionary values;
    XmlElement doc = *ParseXml(xml);
    DataTree t = *EncodeXml(doc, &labels, &values);
    nodes = t.size();
    benchmark::DoNotOptimize(t);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_ParseAndEncode)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_KeyCheck(benchmark::State& state) {
  Alphabet labels;
  ValueDictionary values;
  XmlElement doc = *ParseXml(ScheduleXml(static_cast<size_t>(state.range(0))));
  DataTree t = *EncodeXml(doc, &labels, &values);
  UnaryKey key{labels.Find("course"), labels.Find("ID")};
  for (auto _ : state) {
    bool ok = DocumentSatisfiesKey(t, key);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_KeyCheck)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_InclusionCheck(benchmark::State& state) {
  Alphabet labels;
  ValueDictionary values;
  XmlElement doc = *ParseXml(ScheduleXml(static_cast<size_t>(state.range(0))));
  DataTree t = *EncodeXml(doc, &labels, &values);
  UnaryInclusion inc{labels.Find("course"), labels.Find("ID"),
                     labels.Find("course"), labels.Find("ID")};
  for (auto _ : state) {
    bool ok = DocumentSatisfiesInclusion(t, inc);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_InclusionCheck)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DecodeRoundTrip(benchmark::State& state) {
  Alphabet labels;
  ValueDictionary values;
  XmlElement doc = *ParseXml(ScheduleXml(static_cast<size_t>(state.range(0))));
  DataTree t = *EncodeXml(doc, &labels, &values);
  std::vector<Symbol> attrs = {labels.Find("ID"), labels.Find("faculty"),
                               labels.Find("nr")};
  for (auto _ : state) {
    auto back = DecodeXml(t, labels, values, attrs);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_DecodeRoundTrip)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace fo2dt

BENCHMARK_MAIN();
