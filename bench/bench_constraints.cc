// P5 (Proposition 5 + the NP baseline of [2]): consistency and implication
// of unary keys and inclusion constraints relative to schemas. Compares the
// generic logic route (compile to FO²(∼,+1), bounded model search) with the
// specialized cardinality-ILP procedure for keys + foreign keys. Shape to
// observe: the specialized route stays fast as the constraint set and schema
// grow (the paper's "NP-complete for DTDs" baseline), while the generic
// route pays the model-enumeration blow-up — generality costs 3NEXPTIME.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "arith/arith_stats.h"
#include "bench_main.h"
#include "constraints/constraints.h"
#include "solverlp/simplex.h"
#include "xmlenc/dtd.h"

namespace fo2dt {
namespace {

// Attaches the solver-core counters (simplex effort, warm-start hit rate,
// BigInt small-int fast-path rate) accumulated over the timing loop.
void ReportSolverCounters(benchmark::State& state) {
  SimplexCounters sx = SimplexStats::Aggregate();
  ArithCounters ar = ArithStats::Aggregate();
  double iters = static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  state.counters["pivots"] = static_cast<double>(sx.pivots) / iters;
  state.counters["tableau_builds"] =
      static_cast<double>(sx.tableau_builds) / iters;
  state.counters["warm_start_hit_rate"] = sx.WarmStartHitRate();
  state.counters["arith_fast_path_rate"] = ar.FastPathRate();
}

/// Schema with k entity kinds: root may contain, per kind i, two "src_i" and
/// one optional "ref_i"; each carries one attribute "k_i". Constraint set:
/// keyed foreign keys src_i.k_i -> ref_i.k_i (inconsistent: 2 sources with
/// distinct values, at most 1 target).
struct Family {
  Alphabet labels;
  TreeAutomaton schema;
  ConstraintSet set;
};

Family MakeFamily(size_t kinds, bool consistent) {
  Family f;
  Symbol root = f.labels.Intern("root");
  Dtd dtd;
  dtd.root = root;
  std::string content;
  for (size_t i = 0; i < kinds; ++i) {
    Symbol src = f.labels.Intern("src" + std::to_string(i));
    Symbol ref = f.labels.Intern("ref" + std::to_string(i));
    Symbol key = f.labels.Intern("k" + std::to_string(i));
    DtdElement src_el{src, Regex::Epsilon(), {key}};
    DtdElement ref_el{ref, Regex::Epsilon(), {key}};
    dtd.elements.push_back(src_el);
    dtd.elements.push_back(ref_el);
    if (!content.empty()) content += ", ";
    content += "src" + std::to_string(i) + ", src" + std::to_string(i) +
               ", ref" + std::to_string(i) + "?";
    if (!consistent) f.set.keys.push_back({src, key});
    f.set.keys.push_back({ref, key});
    f.set.inclusions.push_back({src, key, ref, key});
  }
  DtdElement root_el;
  root_el.element = root;
  Alphabet regex_labels = f.labels;
  root_el.content = *ParseRegex(content, &regex_labels);
  dtd.elements.push_back(root_el);
  f.schema = *DtdToTreeAutomaton(dtd, f.labels.size());
  return f;
}

void BM_SpecializedIlp(benchmark::State& state) {
  Family f = MakeFamily(static_cast<size_t>(state.range(0)),
                        state.range(1) != 0);
  SimplexStats::Reset();
  ArithStats::Reset();
  PhaseStats::Reset();
  for (auto _ : state) {
    auto r = CheckKeyForeignKeyConsistencyIlp(f.schema, f.set);
    benchmark::DoNotOptimize(r);
    if (r.ok()) {
      state.counters["unsat"] = r->verdict == SatVerdict::kUnsat ? 1 : 0;
    }
  }
  ReportSolverCounters(state);
  ReportPhaseCounters(state);
}
// Growth from 1 to 2 kinds already shows the NP scaling of the exact
// rational ILP; 3 kinds takes minutes and is left out of the default grid.
BENCHMARK(BM_SpecializedIlp)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1});

void BM_GenericBoundedSearch(benchmark::State& state) {
  Family f = MakeFamily(1, true);
  SolverOptions opt;
  opt.max_model_nodes = static_cast<size_t>(state.range(0));
  PhaseStats::Reset();
  for (auto _ : state) {
    auto r = CheckConsistencyBounded(f.schema, f.set, opt);
    benchmark::DoNotOptimize(r);
  }
  ReportPhaseCounters(state);
}
// The generic route: cost explodes with the model bound (the schema needs
// >= 5-node documents, so small bounds return UNKNOWN quickly and the
// crossover against the ILP is visible between 5 and 7).
BENCHMARK(BM_GenericBoundedSearch)->Arg(3)->Arg(5)->Arg(6);

void BM_ImplicationCounterexample(benchmark::State& state) {
  // No premises; conclusion: key on src0 — counterexample documents exist.
  Family f = MakeFamily(1, true);
  ConstraintSet premises;
  Formula conclusion = KeyToFo2(f.set.keys.empty()
                                    ? UnaryKey{f.labels.Find("src0"),
                                               f.labels.Find("k0")}
                                    : UnaryKey{f.labels.Find("src0"),
                                               f.labels.Find("k0")});
  SolverOptions opt;
  opt.max_model_nodes = static_cast<size_t>(state.range(0));
  PhaseStats::Reset();
  for (auto _ : state) {
    auto r = CheckImplicationBounded(f.schema, premises, conclusion, opt);
    benchmark::DoNotOptimize(r);
  }
  ReportPhaseCounters(state);
}
BENCHMARK(BM_ImplicationCounterexample)->Arg(5)->Arg(6);

// Repeated traffic over one schema: the largest grid family (2 kinds), with
// kRepeatedVariants query variants — alternating consistent/inconsistent
// constraint sets and a distinct ILP node budget per variant, so every
// variant keys its own verdict-cache entry while the solve work repeats.
// Cold = first-pass cost with caching at its default (disabled); warm =
// cache enabled, populated once, second pass timed (>= 5x is the gate).
constexpr size_t kRepeatedVariants = 100;

void RunRepeatedKeyfkWorkload(const Family& consistent,
                              const Family& inconsistent,
                              Histogram* latency = nullptr) {
  for (size_t i = 0; i < kRepeatedVariants; ++i) {
    const Family& f = i % 2 == 0 ? consistent : inconsistent;
    LctaOptions options;
    options.max_ilp_nodes += i;  // distinct cache key, identical behavior
    const auto start = std::chrono::steady_clock::now();
    auto r = CheckKeyForeignKeyConsistencyIlp(f.schema, f.set, options);
    if (latency != nullptr) latency->Record(MicrosSince(start));
    benchmark::DoNotOptimize(r);
  }
}

void BM_KeyfkRepeatedWorkloadCold(benchmark::State& state) {
  Family consistent = MakeFamily(2, true);
  Family inconsistent = MakeFamily(2, false);
  SimplexStats::Reset();
  ArithStats::Reset();
  PhaseStats::Reset();
  SolveCache::Stats before = SolveCache::Instance().stats();
  Histogram latency{names::kMetricHistSolveWallMs};
  for (auto _ : state) {
    RunRepeatedKeyfkWorkload(consistent, inconsistent, &latency);
  }
  ReportCacheCounters(state, before);
  ReportSolveLatency(state, latency);
  ReportSolverCounters(state);
  ReportPhaseCounters(state);
}
BENCHMARK(BM_KeyfkRepeatedWorkloadCold)->Unit(benchmark::kMillisecond);

// Registered (and therefore run) after the cold variant: it leaves the
// process-wide cache enabled and populated so repeated invocations of the
// benchmark function stay on the second-pass path.
void BM_KeyfkRepeatedWorkloadWarm(benchmark::State& state) {
  Family consistent = MakeFamily(2, true);
  Family inconsistent = MakeFamily(2, false);
  SolveCache& cache = SolveCache::Instance();
  if (!cache.enabled()) {
    SolveCacheConfig config;
    config.enabled = true;
    cache.Configure(config);
  }
  if (cache.stats().entries == 0) {
    RunRepeatedKeyfkWorkload(consistent, inconsistent);  // populate pass
  }
  SimplexStats::Reset();
  ArithStats::Reset();
  PhaseStats::Reset();
  SolveCache::Stats before = cache.stats();
  Histogram latency{names::kMetricHistSolveWallMs};
  for (auto _ : state) {
    RunRepeatedKeyfkWorkload(consistent, inconsistent, &latency);
  }
  ReportCacheCounters(state, before);
  ReportSolveLatency(state, latency);
  ReportSolverCounters(state);
  ReportPhaseCounters(state);
}
BENCHMARK(BM_KeyfkRepeatedWorkloadWarm)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fo2dt

FO2DT_BENCH_MAIN();
