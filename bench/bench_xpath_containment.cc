// TH3 (Theorem 3): LocalDataXPath satisfiability and containment. Measures
// translation size, direct evaluation throughput, and decision times as
// path length and predicate nesting grow. Shape to observe: translation is
// linear in the expression; the containment decision inherits the bounded
// search's exponential dependence on the counterexample size — deeper paths
// need bigger counterexamples.

#include <benchmark/benchmark.h>

#include <string>

#include "common/random.h"
#include "datatree/generator.h"
#include "xpath/xpath.h"

namespace fo2dt {
namespace {

std::string ChainQuery(size_t depth, bool with_pred) {
  std::string q;
  for (size_t i = 0; i < depth; ++i) {
    q += "/Child::l" + std::to_string(i % 3);
  }
  if (with_pred) q += "[Child::l0 and not Child::l1]";
  return q;
}

void BM_Translate(benchmark::State& state) {
  Alphabet labels;
  XpPath p = *ParseXPath(ChainQuery(static_cast<size_t>(state.range(0)), true),
                         &labels);
  SafetyAssociations assoc;
  for (auto _ : state) {
    auto f = TranslateXPathToFo2(p, assoc);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_Translate)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_Evaluate(benchmark::State& state) {
  Alphabet labels;
  XpPath p = *ParseXPath(ChainQuery(4, true), &labels);
  RandomSource rng(5);
  RandomTreeOptions opt;
  opt.num_nodes = static_cast<size_t>(state.range(0));
  opt.num_labels = 3;
  DataTree t = RandomDataTree(opt, &rng, &labels);
  for (auto _ : state) {
    auto hits = EvaluateXPathFromRoot(t, p);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Evaluate)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ContainmentHolds(benchmark::State& state) {
  Alphabet labels;
  size_t depth = static_cast<size_t>(state.range(0));
  XpPath p = *ParseXPath(ChainQuery(depth, true), &labels);
  XpPath q = *ParseXPath(ChainQuery(depth, false), &labels);
  SolverOptions opt;
  opt.max_model_nodes = depth + 2;
  for (auto _ : state) {
    auto r = CheckXPathContainment(p, q, nullptr, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ContainmentHolds)->Arg(1)->Arg(2)->Arg(3);

void BM_ContainmentRefuted(benchmark::State& state) {
  Alphabet labels;
  size_t depth = static_cast<size_t>(state.range(0));
  XpPath p = *ParseXPath(ChainQuery(depth, false), &labels);
  XpPath q = *ParseXPath(ChainQuery(depth, true), &labels);
  SolverOptions opt;
  opt.max_model_nodes = depth + 2;
  for (auto _ : state) {
    auto r = CheckXPathContainment(p, q, nullptr, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ContainmentRefuted)->Arg(1)->Arg(2)->Arg(3);

void BM_DataJoinSatisfiability(benchmark::State& state) {
  Alphabet labels;
  XpPath p = *ParseXPath(
      "/Child::item[Self::*/@val = /Child::ref/@val]", &labels);
  SolverOptions opt;
  opt.max_model_nodes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = CheckXPathSatisfiability(p, nullptr, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DataJoinSatisfiability)->Arg(4)->Arg(5);

}  // namespace
}  // namespace fo2dt

BENCHMARK_MAIN();
