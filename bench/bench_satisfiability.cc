// TH1 (Theorem 1): FO²(∼,+1) satisfiability through the library's budgeted
// procedure. The paper proves decidability with a 3NEXPTIME upper bound and
// NEXPTIME-hardness; the shape to observe here is the exponential growth of
// bounded model search in the model-size bound and in the number of
// "pairwise distinct class" conjuncts (which force larger minimal models),
// versus near-instant verdicts on locally-refutable formulas.

#include <benchmark/benchmark.h>

#include <string>

#include "frontend/solver.h"
#include "logic/parser.h"

namespace fo2dt {
namespace {

// Formula family: k labels that must pairwise lie in different classes,
// forcing a minimal model with k nodes and k distinct values.
Formula DistinctClasses(size_t k, Alphabet* labels) {
  std::string text;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (!text.empty()) text += " & ";
      text += "exists x. exists y. (l" + std::to_string(i) + "(x) & l" +
              std::to_string(j) + "(y) & !(x ~ y))";
    }
  }
  return *ParseFormula(text, labels);
}

void BM_SatGrowingMinimalModel(benchmark::State& state) {
  Alphabet labels;
  Formula f = DistinctClasses(static_cast<size_t>(state.range(0)), &labels);
  SolverOptions opt;
  opt.max_model_nodes = static_cast<size_t>(state.range(0)) + 1;
  for (auto _ : state) {
    auto r = CheckFo2SatisfiabilityBounded(f, opt);
    benchmark::DoNotOptimize(r);
    if (r.ok()) state.counters["steps"] = static_cast<double>(r->steps);
  }
}
BENCHMARK(BM_SatGrowingMinimalModel)->Arg(2)->Arg(3)->Arg(4);

// The same query over a fixed bound, growing the bound: the enumeration
// explodes with the bound (the Table-I bound would be astronomically far).
void BM_ExhaustBoundUnsat(benchmark::State& state) {
  Alphabet labels;
  // a-nodes must have a same-valued child AND no two nodes share values:
  // contradictory; the solver exhausts the bound.
  Formula f = *ParseFormula(
      "exists x. a(x) & "
      "forall x. (a(x) -> exists y. (child(x,y) & x ~ y)) & "
      "forall x. forall y. (x ~ y -> x = y)",
      &labels);
  SolverOptions opt;
  opt.max_model_nodes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = CheckFo2SatisfiabilityBounded(f, opt);
    benchmark::DoNotOptimize(r);
    if (r.ok()) state.counters["steps"] = static_cast<double>(r->steps);
  }
}
BENCHMARK(BM_ExhaustBoundUnsat)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_SatisfiableKeyFormula(benchmark::State& state) {
  Alphabet labels;
  Formula f = *ParseFormula(
      "forall x. forall y. ((a(x) & a(y) & x ~ y) -> x = y) & "
      "exists x. exists y. (a(x) & a(y) & x != y)",
      &labels);
  SolverOptions opt;
  opt.max_model_nodes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = CheckFo2SatisfiabilityBounded(f, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SatisfiableKeyFormula)->Arg(3)->Arg(5);

}  // namespace
}  // namespace fo2dt

BENCHMARK_MAIN();
