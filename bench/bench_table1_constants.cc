// T1: regenerates Table I (the pruning constants of Proposition 2) for
// concrete puzzle families. The paper gives asymptotic forms
//   M_i = |F|·|Q|^O(|Q|),  N1 = O(|Q|²|Σ|),  N2 = O(|Σ||Q|³),  N3 = O(|Σ||Q|²)
// and M = M1+M2+M3, N = (N1·N2)^(N3+1); we instantiate the O(·) constants
// with 1 and report exact values (|F| via the counting DP). The shape to
// observe: the M-column explodes with the alphabet (|F| is exponential in
// |Σ|) while N1..N3 stay polynomial — and N is astronomical regardless,
// which is why the library replaces the small-model bound by budgets
// (DESIGN.md §2).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "puzzle/puzzle.h"

namespace fo2dt {
namespace {

Puzzle MakePuzzle(size_t num_labels, size_t num_conditions) {
  ExtAlphabet ext{num_labels, 0};
  DnfBlock block;
  for (size_t c = 0; c < num_conditions; ++c) {
    SimpleFormula s;
    s.kind = c % 2 == 0 ? SimpleFormula::Kind::kAtMostOne
                        : SimpleFormula::Kind::kImpliesPresence;
    s.alpha = TypeSet(ext.size(), 0);
    s.alpha[c % ext.size()] = 1;
    if (s.kind == SimpleFormula::Kind::kImpliesPresence) {
      s.beta = TypeSet(ext.size(), 0);
      s.beta[(c + 1) % ext.size()] = 1;
    }
    block.simples.push_back(std::move(s));
  }
  return *PuzzleFromBlock(block, ext);
}

void PrintTable() {
  std::printf(
      "\nTable I instantiation (per puzzle: |labels| L, conditions C)\n");
  std::printf("%-4s %-3s %-22s %-22s %-10s %-10s %-10s %-14s\n", "L", "C",
              "|F|", "M = 3|F||Q|^|Q|", "N1", "N2", "N3", "digits(N)");
  for (size_t labels = 2; labels <= 6; ++labels) {
    for (size_t conds : {1u, 3u}) {
      Puzzle p = MakePuzzle(labels, conds);
      TableIConstants t = ComputeTableIConstants(p);
      std::printf("%-4zu %-3zu %-22s %-22s %-10s %-10s %-10s %-14zu\n", labels,
                  static_cast<size_t>(conds), t.f_size.ToString().c_str(),
                  t.m.ToString().c_str(), t.n1.ToString().c_str(),
                  t.n2.ToString().c_str(), t.n3.ToString().c_str(), t.n_digits);
    }
  }
  std::printf("\n");
}

void BM_CountAcceptingPairs(benchmark::State& state) {
  Puzzle p = MakePuzzle(static_cast<size_t>(state.range(0)),
                        static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    BigInt f = CountAcceptingPairs(p);
    benchmark::DoNotOptimize(f);
  }
  state.counters["F"] = CountAcceptingPairs(p).ToDouble();
}
BENCHMARK(BM_CountAcceptingPairs)
    ->Args({2, 1})
    ->Args({4, 2})
    ->Args({6, 3})
    ->Args({8, 4});

void BM_TableIConstants(benchmark::State& state) {
  Puzzle p = MakePuzzle(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    TableIConstants t = ComputeTableIConstants(p);
    benchmark::DoNotOptimize(t.n_digits);
  }
}
BENCHMARK(BM_TableIConstants)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace fo2dt

int main(int argc, char** argv) {
  fo2dt::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
