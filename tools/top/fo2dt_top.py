#!/usr/bin/env python3
"""fo2dt_top: live terminal dashboard for a running fo2dtd daemon.

Scrapes the daemon's `metrics` wire op (Prometheus-style text inside the
JSON response's `exposition` field) and renders the operational picture a
capacity question needs: request rate, the wire/solve latency distribution
(p50/p95/p99 straight from the daemon's log2-bucket histograms), solve-cache
hit rate, worker occupancy, and the per-tenant degradation-ladder table.

Usage:
  fo2dt_top.py --socket /tmp/fo2dtd.sock              # live (curses), 1s
  fo2dt_top.py --socket /tmp/fo2dtd.sock --interval 2
  fo2dt_top.py --socket /tmp/fo2dtd.sock --once       # one plain-text frame

`--once` prints one frame to stdout and exits 0 (exit 2 when the daemon is
unreachable), so scripts and tests can assert on the rendering without a
tty. The live mode falls back to plain-text frames when stdout is not a
terminal or curses is unavailable.

Only the Python standard library is used; the scrape path is one
line-delimited JSON request over the daemon's Unix socket, the same
protocol every other client speaks.
"""

import argparse
import json
import re
import socket
import sys
import time

# One exposition line: `name 1.5` or `name{label="x",le="3"} 7`.
SERIES_RE = re.compile(r'^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(\S+)$')
LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')

LADDER_OUTCOMES = ("admitted", "degraded_light", "degraded_heavy", "rejected")


def scrape(socket_path, timeout=5.0):
    """One `metrics` op round-trip; returns the raw exposition text."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall(b'{"op":"metrics","id":"fo2dt_top"}\n')
        buf = b""
        while b"\n" not in buf:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            buf += chunk
    line = buf.split(b"\n", 1)[0].decode("utf-8", "replace")
    resp = json.loads(line)
    if resp.get("status") != "OK":
        raise RuntimeError("metrics op answered %r" % resp.get("status"))
    return resp.get("exposition", "")


def parse_exposition(text):
    """Prometheus text -> (flat {name: float}, labeled [(name, labels, float)])."""
    flat = {}
    labeled = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = SERIES_RE.match(line)
        if not match:
            continue
        name, label_blob, value_text = match.groups()
        try:
            value = float(value_text)
        except ValueError:
            continue  # +Inf bucket values are numeric; this skips garbage
        if label_blob:
            labels = dict(LABEL_RE.findall(label_blob))
            labeled.append((name, labels, value))
        else:
            flat[name] = value
    return flat, labeled


def tenant_table(labeled):
    """Per-tenant ladder counts + latency p95 from the labeled series."""
    tenants = {}
    for name, labels, value in labeled:
        tenant = labels.get("tenant")
        if tenant is None:
            continue
        row = tenants.setdefault(
            tenant, {outcome: 0 for outcome in LADDER_OUTCOMES})
        if name == "fo2dt_tenant_requests_total":
            outcome = labels.get("outcome")
            if outcome in row:
                row[outcome] = int(value)
        elif name == "fo2dt_hist_tenant_wire_ms_count":
            row["latency_count"] = int(value)
        elif name == "fo2dt_hist_tenant_wire_ms_bucket":
            row.setdefault("buckets", []).append(
                (labels.get("le", "+Inf"), value))
    for row in tenants.values():
        row["p95"] = bucket_percentile(row.get("buckets", []), 95.0)
    return tenants


def bucket_percentile(buckets, p):
    """Nearest-rank percentile from cumulative `le` buckets."""
    finite = []
    total = 0.0
    for le, cumulative in buckets:
        if le == "+Inf":
            total = max(total, cumulative)
        else:
            finite.append((float(le), cumulative))
            total = max(total, cumulative)
    if total <= 0:
        return 0.0
    finite.sort()
    rank = max(1.0, round(total * p / 100.0))
    for le, cumulative in finite:
        if cumulative >= rank:
            return le
    return finite[-1][0] if finite else 0.0


def render_frame(flat, labeled, qps, width=78):
    """One plain-text frame (list of lines); shared by --once and curses."""
    lines = []

    def metric(name, default=0.0):
        return flat.get(name, default)

    completed = metric("fo2dt_server_completed")
    accepted = metric("fo2dt_server_accepted")
    rejected = metric("fo2dt_server_rejected_overload")
    degraded = metric("fo2dt_server_degraded")
    busy = metric("fo2dt_server_workers_busy")
    depth = metric("fo2dt_server_queue_depth")
    peak = metric("fo2dt_server_queue_depth_peak")
    hits = metric("fo2dt_cache_solve_hits")
    misses = metric("fo2dt_cache_solve_misses")
    lookups = hits + misses
    hit_rate = (100.0 * hits / lookups) if lookups else 0.0

    lines.append("fo2dtd" + " " * 4 +
                 "qps %6.1f   completed %8d   workers busy %d   "
                 "queue %d (peak %d)"
                 % (qps, completed, busy, depth, peak))
    lines.append("admission  accepted %d   degraded %d   rejected %d   "
                 "cache hit %5.1f%% (%d/%d)"
                 % (accepted, degraded, rejected, hit_rate, hits, lookups))
    lines.append("-" * width)
    lines.append("%-18s %10s %10s %10s" % ("latency (ms)", "p50", "p95",
                                           "p99"))
    for label, key in (("wire", "fo2dt_hist_wire_ms"),
                       ("queue wait", "fo2dt_hist_queue_wait_ms"),
                       ("solve wall", "fo2dt_hist_solve_wall_ms")):
        lines.append("%-18s %10.0f %10.0f %10.0f"
                     % (label, metric(key + "_p50"), metric(key + "_p95"),
                        metric(key + "_p99")))
    lines.append("%-18s %10.0f %10.0f %10.0f"
                 % ("solve mem (bytes)",
                    metric("fo2dt_hist_solve_mem_bytes_p50"),
                    metric("fo2dt_hist_solve_mem_bytes_p95"),
                    metric("fo2dt_hist_solve_mem_bytes_p99")))
    lines.append("-" * width)
    tenants = tenant_table(labeled)
    lines.append("%-16s %9s %8s %8s %9s %9s"
                 % ("tenant", "admitted", "light", "heavy", "rejected",
                    "p95 ms"))
    for tenant in sorted(tenants):
        row = tenants[tenant]
        lines.append("%-16s %9d %8d %8d %9d %9.0f"
                     % (tenant[:16], row["admitted"], row["degraded_light"],
                        row["degraded_heavy"], row["rejected"], row["p95"]))
    if not tenants:
        lines.append("(no tenant traffic yet)")
    return lines


def one_frame(socket_path, prev=None, dt=None):
    """Scrape + parse + derive QPS against the previous completed count."""
    flat, labeled = parse_exposition(scrape(socket_path))
    completed = flat.get("fo2dt_server_completed", 0.0)
    qps = 0.0
    if prev is not None and dt:
        qps = max(0.0, completed - prev) / dt
    return flat, labeled, completed, qps


def run_once(socket_path):
    flat, labeled, _, qps = one_frame(socket_path)
    for line in render_frame(flat, labeled, qps):
        print(line)
    return 0


def run_plain(socket_path, interval):
    prev = None
    while True:
        start = time.monotonic()
        flat, labeled, completed, qps = one_frame(
            socket_path, prev, interval if prev is not None else None)
        prev = completed
        print("\n".join(render_frame(flat, labeled, qps)))
        print()
        sys.stdout.flush()
        elapsed = time.monotonic() - start
        time.sleep(max(0.0, interval - elapsed))


def run_curses(socket_path, interval):
    import curses

    def loop(screen):
        curses.curs_set(0)
        screen.nodelay(True)
        prev = None
        while True:
            flat, labeled, completed, qps = one_frame(
                socket_path, prev, interval if prev is not None else None)
            prev = completed
            screen.erase()
            height, width = screen.getmaxyx()
            frame = render_frame(flat, labeled, qps, width=min(width - 1, 78))
            for y, line in enumerate(frame[: height - 1]):
                screen.addnstr(y, 0, line, width - 1)
            screen.refresh()
            deadline = time.monotonic() + interval
            while time.monotonic() < deadline:
                if screen.getch() in (ord("q"), 27):
                    return
                time.sleep(0.05)

    curses.wrapper(loop)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--socket", required=True,
                        help="fo2dtd Unix socket path")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh interval, seconds (default 1)")
    parser.add_argument("--once", action="store_true",
                        help="print one plain frame and exit")
    args = parser.parse_args()
    try:
        if args.once:
            return run_once(args.socket)
        if sys.stdout.isatty():
            try:
                run_curses(args.socket, args.interval)
                return 0
            except ImportError:
                pass
        run_plain(args.socket, args.interval)
        return 0
    except KeyboardInterrupt:
        return 0
    except (OSError, RuntimeError, json.JSONDecodeError) as err:
        print("fo2dt_top: %s" % err, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
