/// \file fo2dtd.cc
/// \brief The fo2dt solve daemon: serves facade solves over a Unix domain
/// socket until SIGTERM/SIGINT, then drains gracefully.
///
/// Usage:
///   fo2dtd --socket /path/sock [options]
///
/// Options:
///   --workers N               worker threads (default 4)
///   --queue-limit N           admission queue slots (default 64)
///   --tenant-active-limit N   per-tenant active-request cap (default 8, 0=off)
///   --default-deadline-ms N   deadline when the request names none
///   --watchdog-grace-ms N     slack past deadline before force-cancel
///   --degrade-light-pct N / --degrade-heavy-pct N
///                             shedding-ladder occupancy thresholds
///   --quota-deadline-ms N / --quota-effort N / --quota-bytes N
///                             per-tenant budget ceilings (0 = unlimited)
///   --failpoint SITE[=FIRE]   arm a registered failpoint with the canonical
///                             injection; FIRE bounds how many hits inject
///                             (default 1). Fault-injection builds only.
///
/// Observability comes from the environment like every other entry point:
/// FO2DT_QUERY_LOG / FO2DT_CAPTURE / FO2DT_CAPTURE_DIR for the flight
/// recorder, FO2DT_CACHE / FO2DT_CACHE_FILE for the solve cache.
///
/// Exit status: 0 after a clean drain, 2 on startup failure.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/failpoint.h"
#include "common/flight_recorder.h"
#include "common/strings.h"
#include "server/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

uint64_t ParseCount(const char* text) {
  return static_cast<uint64_t>(std::strtoull(text, nullptr, 10));
}

int Usage() {
  std::fprintf(stderr,
               "usage: fo2dtd --socket PATH [--workers N] [--queue-limit N]\n"
               "              [--tenant-active-limit N] "
               "[--default-deadline-ms N]\n"
               "              [--watchdog-grace-ms N] [--degrade-light-pct N]\n"
               "              [--degrade-heavy-pct N] [--quota-deadline-ms N]\n"
               "              [--quota-effort N] [--quota-bytes N]\n"
               "              [--failpoint SITE[=FIRE]]...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fo2dt::SolveServerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--socket" && (value = next())) {
      options.socket_path = value;
    } else if (arg == "--workers" && (value = next())) {
      options.num_workers = ParseCount(value);
    } else if (arg == "--queue-limit" && (value = next())) {
      options.admission.queue_limit = ParseCount(value);
    } else if (arg == "--tenant-active-limit" && (value = next())) {
      options.admission.tenant_active_limit = ParseCount(value);
    } else if (arg == "--default-deadline-ms" && (value = next())) {
      options.default_deadline_ms = ParseCount(value);
    } else if (arg == "--watchdog-grace-ms" && (value = next())) {
      options.watchdog_grace_ms = ParseCount(value);
    } else if (arg == "--degrade-light-pct" && (value = next())) {
      options.admission.degrade_light_pct = ParseCount(value);
    } else if (arg == "--degrade-heavy-pct" && (value = next())) {
      options.admission.degrade_heavy_pct = ParseCount(value);
    } else if (arg == "--quota-deadline-ms" && (value = next())) {
      options.admission.quota.max_deadline_ms = ParseCount(value);
    } else if (arg == "--quota-effort" && (value = next())) {
      options.admission.quota.max_effort = ParseCount(value);
    } else if (arg == "--quota-bytes" && (value = next())) {
      options.admission.quota.max_bytes = ParseCount(value);
    } else if (arg == "--failpoint" && (value = next())) {
      std::string site = value;
      int64_t fire = 1;
      size_t eq = site.find('=');
      if (eq != std::string::npos) {
        fire = static_cast<int64_t>(ParseCount(site.c_str() + eq + 1));
        site.resize(eq);
      }
      if (!fo2dt::Failpoints::CompiledIn()) {
        std::fprintf(stderr,
                     "fo2dtd: --failpoint %s needs a fault-injection build "
                     "(-DFO2DT_ENABLE_FAILPOINTS=ON)\n",
                     site.c_str());
        return 2;
      }
      if (!fo2dt::ArmCanonicalReplayInjection(site, fire)) {
        std::fprintf(stderr, "fo2dtd: unknown failpoint site '%s'\n",
                     site.c_str());
        return 2;
      }
    } else {
      return Usage();
    }
  }
  if (options.socket_path.empty()) return Usage();

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGPIPE, SIG_IGN);

  fo2dt::SolveServer server(options);
  fo2dt::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "fo2dtd: %s\n", started.ToString().c_str());
    return 2;
  }
  std::printf("fo2dtd listening on %s\n", options.socket_path.c_str());
  std::fflush(stdout);

  // fo2dt-lint: allow(no-checkpoint, signal wait loop; exits on SIGTERM/SIGINT)
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Shutdown();
  fo2dt::ServerStats stats = server.stats();
  std::printf(
      "fo2dtd drained: accepted=%llu rejected=%llu degraded=%llu "
      "completed=%llu worker_faults=%llu watchdog_kills=%llu\n",
      static_cast<unsigned long long>(stats.admission.accepted),
      static_cast<unsigned long long>(stats.admission.rejected),
      static_cast<unsigned long long>(stats.admission.degraded),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.worker_faults),
      static_cast<unsigned long long>(stats.watchdog_kills));
  return 0;
}
