/// \file fo2dtc.cc
/// \brief Command-line client for fo2dtd: sends solve/ping/stats requests
/// over the daemon's Unix domain socket and prints the response lines.
///
/// Usage:
///   fo2dtc --socket PATH --op ping
///   fo2dtc --socket PATH --op stats
///   fo2dtc --socket PATH --facade frontend.sat --body-file req.fo2dt
///          [--tenant NAME] [--deadline-ms N] [--max-effort N]
///          [--count N] [--concurrency K] [--json]
///
/// With --count N the client pipelines N copies of the request on each
/// connection before reading responses — the overload-recipe shape
/// (EXPERIMENTS.md §"Overload"): a burst arrives faster than workers drain
/// it, so the tail of the burst walks the daemon's shedding ladder. With
/// --concurrency K it opens K connections, each pipelining its own burst.
///
/// With --json each response prints as one compact JSON line carrying the
/// client-observed latency (burst send → that response) next to the
/// daemon-echoed id/request_id/status/verdict, and a final summary line
/// ({"summary":true,...}) reports the burst's client-side p50/p95. Raw
/// response lines are suppressed.
///
/// Exit status: 0 when every response has status OK, 1 when any response is
/// OVERLOADED or ERROR (the responses still print), 2 on usage/connect
/// failures. --json does not change the exit-status contract.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "server/protocol.h"

namespace {

struct ClientConfig {
  std::string socket_path;
  std::string op = "solve";
  std::string facade;
  std::string tenant;
  std::string body;
  uint64_t deadline_ms = 0;
  uint64_t max_bytes = 0;
  uint64_t max_effort = 0;
  uint64_t count = 1;
  uint64_t concurrency = 1;
  bool json = false;
};

/// First top-level occurrence of `"key":"value"` in \p line; empty when
/// absent. Good enough for the daemon's flat response lines (ids, verdicts
/// and request_ids never contain escapes).
std::string ResponseStrField(const std::string& line, const char* key) {
  std::string pattern = std::string("\"") + key + "\":\"";
  size_t at = line.find(pattern);
  if (at == std::string::npos) return "";
  size_t start = at + pattern.size();
  size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

/// Client-side nearest-rank percentile over the collected burst latencies.
uint64_t LatencyPercentile(std::vector<uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(
      (p / 100.0) * static_cast<double>(sorted.size()) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

int Usage() {
  std::fprintf(stderr,
               "usage: fo2dtc --socket PATH [--op solve|ping|stats]\n"
               "              [--facade NAME] [--body-file FILE | --body -]\n"
               "              [--tenant NAME] [--deadline-ms N] "
               "[--max-bytes N]\n"
               "              [--max-effort N] [--count N] "
               "[--concurrency K] [--json]\n");
  return 2;
}

std::string BuildRequestLine(const ClientConfig& config, uint64_t seq) {
  std::string line = "{";
  auto add_str = [&line](const char* key, const std::string& value) {
    if (value.empty()) return;
    if (line.size() > 1) line += ",";
    line += "\"";
    line += key;
    line += "\":\"";
    line += fo2dt::JsonEscape(value);
    line += "\"";
  };
  auto add_int = [&line](const char* key, uint64_t value) {
    if (value == 0) return;
    if (line.size() > 1) line += ",";
    line += fo2dt::StringFormat("\"%s\":%llu", key,
                                static_cast<unsigned long long>(value));
  };
  add_str("op", config.op);
  add_str("id", fo2dt::StringFormat(
                    "r%llu", static_cast<unsigned long long>(seq)));
  add_str("tenant", config.tenant);
  add_str("facade", config.facade);
  add_str("body", config.body);
  add_int("deadline_ms", config.deadline_ms);
  add_int("max_bytes", config.max_bytes);
  add_int("max_effort", config.max_effort);
  line += "}\n";
  return line;
}

int ConnectTo(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Runs one connection's burst: pipeline `count` requests, then read `count`
/// response lines. Responses print under `print_mu` so concurrent
/// connections do not interleave bytes.
bool RunConnection(const ClientConfig& config, uint64_t first_seq,
                   std::mutex* print_mu, std::atomic<uint64_t>* not_ok,
                   std::vector<uint64_t>* latencies_ms) {
  int fd = ConnectTo(config.socket_path);
  if (fd < 0) {
    std::lock_guard<std::mutex> lock(*print_mu);
    std::fprintf(stderr, "fo2dtc: cannot connect to %s\n",
                 config.socket_path.c_str());
    return false;
  }
  std::string burst;
  for (uint64_t i = 0; i < config.count; ++i) {
    burst += BuildRequestLine(config, first_seq + i);
  }
  const auto sent_at = std::chrono::steady_clock::now();
  if (!SendAll(fd, burst)) {
    ::close(fd);
    return false;
  }
  std::string buffer;
  char chunk[4096];
  uint64_t received = 0;
  while (received < config.count) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // daemon went away mid-burst
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while (received < config.count &&
           (nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.find("\"status\":\"OK\"") == std::string::npos) {
        not_ok->fetch_add(1);
      }
      // Client-observed latency: burst send → this response. Responses may
      // arrive out of submission order (worker pool), so the daemon-echoed
      // id/request_id name the request, not the line position.
      const uint64_t latency_ms = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - sent_at)
              .count());
      std::lock_guard<std::mutex> lock(*print_mu);
      if (config.json) {
        latencies_ms->push_back(latency_ms);
        std::printf(
            "{\"id\":\"%s\",\"request_id\":\"%s\",\"status\":\"%s\","
            "\"verdict\":\"%s\",\"latency_ms\":%llu}\n",
            ResponseStrField(line, "id").c_str(),
            ResponseStrField(line, "request_id").c_str(),
            ResponseStrField(line, "status").c_str(),
            ResponseStrField(line, "verdict").c_str(),
            static_cast<unsigned long long>(latency_ms));
      } else {
        std::printf("%s\n", line.c_str());
      }
      ++received;
    }
  }
  ::close(fd);
  return received == config.count;
}

}  // namespace

int main(int argc, char** argv) {
  ClientConfig config;
  std::string body_file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--socket" && (value = next())) {
      config.socket_path = value;
    } else if (arg == "--op" && (value = next())) {
      config.op = value;
    } else if (arg == "--facade" && (value = next())) {
      config.facade = value;
    } else if (arg == "--tenant" && (value = next())) {
      config.tenant = value;
    } else if ((arg == "--body-file" || arg == "--body") && (value = next())) {
      body_file = value;
    } else if (arg == "--deadline-ms" && (value = next())) {
      config.deadline_ms = std::strtoull(value, nullptr, 10);
    } else if (arg == "--max-bytes" && (value = next())) {
      config.max_bytes = std::strtoull(value, nullptr, 10);
    } else if (arg == "--max-effort" && (value = next())) {
      config.max_effort = std::strtoull(value, nullptr, 10);
    } else if (arg == "--count" && (value = next())) {
      config.count = std::strtoull(value, nullptr, 10);
    } else if (arg == "--concurrency" && (value = next())) {
      config.concurrency = std::strtoull(value, nullptr, 10);
    } else if (arg == "--json") {
      config.json = true;
    } else {
      return Usage();
    }
  }
  if (config.socket_path.empty() || config.count == 0 ||
      config.concurrency == 0) {
    return Usage();
  }
  if (config.op == "solve") {
    if (config.facade.empty() || body_file.empty()) return Usage();
    std::ostringstream body;
    if (body_file == "-") {
      body << std::cin.rdbuf();
    } else {
      std::ifstream in(body_file);
      if (!in) {
        std::fprintf(stderr, "fo2dtc: cannot open body file '%s'\n",
                     body_file.c_str());
        return 2;
      }
      body << in.rdbuf();
    }
    config.body = body.str();
  }

  std::mutex print_mu;
  std::atomic<uint64_t> not_ok{0};
  std::atomic<bool> all_received{true};
  std::vector<uint64_t> latencies_ms;  // guarded by print_mu
  std::vector<std::thread> threads;
  for (uint64_t c = 0; c < config.concurrency; ++c) {
    threads.emplace_back([&, c] {
      if (!RunConnection(config, c * config.count, &print_mu, &not_ok,
                         &latencies_ms)) {
        all_received.store(false);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (config.json) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    std::printf(
        "{\"summary\":true,\"requests\":%llu,\"ok\":%llu,"
        "\"latency_ms_p50\":%llu,\"latency_ms_p95\":%llu}\n",
        static_cast<unsigned long long>(latencies_ms.size()),
        static_cast<unsigned long long>(latencies_ms.size() - not_ok.load()),
        static_cast<unsigned long long>(LatencyPercentile(latencies_ms, 50)),
        static_cast<unsigned long long>(LatencyPercentile(latencies_ms, 95)));
  }
  if (!all_received.load()) return 2;
  return not_ok.load() == 0 ? 0 : 1;
}
