/// \file fo2dt_replay.cc
/// \brief Deterministic re-execution of flight-recorder post-mortem bundles.
///
/// Usage:
///   fo2dt_replay <bundle-dir | input.fo2dt>
///
/// Reads the bundle's input.fo2dt (format written by common/flight_recorder),
/// reconstructs the facade call — formula / constraint set / XPath / VATA
/// instance, schema automaton, budgets, armed failpoints — re-executes it,
/// and diffs the outcome against the recorded `expect` lines.
///
/// Exit status: 0 = outcome matches the recording, 1 = mismatch,
/// 2 = malformed input or replay infrastructure failure (e.g. the bundle
/// arms failpoints but this build compiled them out).
///
/// The replay is bit-faithful on the discrete outcome (verdict, StopReason
/// kind/module, dominant phase), not on timings: wall/cpu times will differ,
/// and the canonical failpoint injection (common/flight_recorder.h
/// ArmCanonicalReplayInjection) makes the injected phase dominate the
/// profile on both sides so DominantPhase is stable.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "automata/automaton_io.h"
#include "common/execution_context.h"
#include "common/failpoint.h"
#include "common/flight_recorder.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "constraints/constraints.h"
#include "datatree/text_io.h"
#include "frontend/solver.h"
#include "logic/parser.h"
#include "vata/vata.h"
#include "xpath/xpath.h"

namespace fo2dt {
namespace {

struct ReplayInput {
  std::string facade;
  std::vector<std::string> body;            // facade-specific lines, in order
  std::vector<std::string> failpoints;      // sites to re-arm
  std::map<std::string, std::string> expects;  // field -> recorded value
};

int Fail(const char* fmt, const std::string& detail) {
  std::fprintf(stderr, "fo2dt_replay: ");
  std::fprintf(stderr, fmt, detail.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

/// First whitespace-delimited word of \p line; \p rest gets the remainder
/// (with the single separating space stripped).
std::string SplitWord(const std::string& line, std::string* rest) {
  size_t space = line.find(' ');
  if (space == std::string::npos) {
    *rest = "";
    return line;
  }
  *rest = line.substr(space + 1);
  return line.substr(0, space);
}

Result<ReplayInput> ParseReplayFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument(
        StringFormat("cannot open replay input '%s'", path.c_str()));
  }
  ReplayInput out;
  std::string line;
  bool header_seen = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!header_seen) {
      if (line != "fo2dt-replay v1") {
        return Status::ParseError(
            StringFormat("bad replay header '%s'", line.c_str()));
      }
      header_seen = true;
      continue;
    }
    std::string rest;
    std::string word = SplitWord(line, &rest);
    if (word == "facade") {
      out.facade = rest;
    } else if (word == "failpoint") {
      out.failpoints.push_back(rest);
    } else if (word == "expect") {
      std::string value;
      std::string field = SplitWord(rest, &value);
      out.expects[field] = value;  // value runs to end of line
    } else {
      out.body.push_back(line);
    }
  }
  if (!header_seen) return Status::ParseError("empty replay input");
  if (out.facade.empty()) {
    return Status::ParseError("replay input names no facade");
  }
  return out;
}

/// The replay alphabet must reproduce capture-time symbol ids positionally,
/// so pre-intern l0..l{max} for every canonical label mentioned anywhere in
/// the body (a formula can mention l7 before l5; interning in appearance
/// order would scramble the ids).
size_t MaxCanonicalLabel(const std::vector<std::string>& body) {
  size_t alpha = 0;
  for (const std::string& line : body) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] != 'l') continue;
      if (i > 0 && (std::isalnum(static_cast<unsigned char>(line[i - 1])) ||
                    line[i - 1] == '_')) {
        continue;
      }
      size_t j = i + 1;
      uint64_t value = 0;
      while (j < line.size() && line[j] >= '0' && line[j] <= '9') {
        value = value * 10 + static_cast<uint64_t>(line[j] - '0');
        ++j;
      }
      if (j == i + 1) continue;  // bare 'l'
      if (j < line.size() && (std::isalnum(static_cast<unsigned char>(line[j])) ||
                              line[j] == '_')) {
        continue;  // identifier like l0abc, not a canonical label
      }
      if (value + 1 > alpha) alpha = static_cast<size_t>(value + 1);
    }
  }
  return alpha;
}

/// Shared per-body state while walking the facade lines.
struct BodyReader {
  const std::vector<std::string>& lines;
  size_t next = 0;

  bool Done() const { return next >= lines.size(); }
  const std::string& Peek() const { return lines[next]; }
  std::string Take() { return lines[next++]; }

  /// Consumes the 6-line automaton section that follows a "schema"/"filter"
  /// marker line.
  Result<TreeAutomaton> TakeAutomaton() {
    std::string text;
    for (int i = 0; i < 6 && !Done(); ++i) text += Take() + "\n";
    return ParseTreeAutomaton(text);
  }
};

uint64_t ParseU64(const std::string& s) {
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

struct ParsedBudgets {
  std::map<std::string, uint64_t> values;

  uint64_t Get(const char* key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

/// Collects `budget k v` and `flag k v` lines wherever they appear.
bool ConsumeCommon(BodyReader* body, ParsedBudgets* budgets,
                   ParsedBudgets* flags, size_t* labels) {
  std::string rest;
  std::string word = SplitWord(body->Peek(), &rest);
  if (word == "budget") {
    std::string value;
    std::string key = SplitWord(rest, &value);
    budgets->values[key] = ParseU64(value);
  } else if (word == "flag") {
    std::string value;
    std::string key = SplitWord(rest, &value);
    flags->values[key] = ParseU64(value);
  } else if (word == "labels") {
    *labels = static_cast<size_t>(ParseU64(rest));
  } else {
    return false;
  }
  (void)body->Take();
  return true;
}

Result<SolveOutcome> ReplayFrontendSat(const ReplayInput& input,
                                       const ExecutionContext* exec) {
  BodyReader body{input.body};
  ParsedBudgets budgets, flags;
  size_t labels = 0;
  std::optional<TreeAutomaton> filter;
  std::string formula_text;
  while (!body.Done()) {
    if (ConsumeCommon(&body, &budgets, &flags, &labels)) continue;
    std::string rest;
    std::string word = SplitWord(body.Peek(), &rest);
    if (word == "filter") {
      (void)body.Take();
      FO2DT_ASSIGN_OR_RETURN(TreeAutomaton a, body.TakeAutomaton());
      filter = std::move(a);
    } else if (word == "formula") {
      (void)body.Take();
      formula_text = rest;
    } else {
      return Status::ParseError(StringFormat(
          "unexpected line '%s' in frontend.sat body", body.Peek().c_str()));
    }
  }
  if (formula_text.empty()) {
    return Status::ParseError("frontend.sat body has no formula");
  }
  Alphabet alphabet =
      MakeReplayAlphabet(std::max(labels, MaxCanonicalLabel(input.body)));
  FO2DT_ASSIGN_OR_RETURN(Formula sentence,
                         ParseFormula(formula_text, &alphabet));
  SolverOptions options;
  options.num_labels = labels;
  options.max_model_nodes =
      static_cast<size_t>(budgets.Get("max_model_nodes", 6));
  options.max_steps = budgets.Get("max_steps", 20000000);
  options.use_counting_abstraction = flags.Get("use_counting_abstraction", 1) != 0;
  if (filter.has_value()) options.structural_filter = &*filter;
  options.exec = exec;
  return SolveOutcomeFromSat(CheckFo2SatisfiabilityBounded(sentence, options));
}

struct ConstraintBody {
  TreeAutomaton schema;
  ConstraintSet set;
  std::string conclusion_text;
  ParsedBudgets budgets;
};

Result<ConstraintBody> ParseConstraintBody(const ReplayInput& input) {
  BodyReader body{input.body};
  ConstraintBody out;
  ParsedBudgets flags;
  size_t labels = 0;
  bool schema_seen = false;
  while (!body.Done()) {
    if (ConsumeCommon(&body, &out.budgets, &flags, &labels)) continue;
    std::string rest;
    std::string word = SplitWord(body.Peek(), &rest);
    if (word == "schema") {
      (void)body.Take();
      FO2DT_ASSIGN_OR_RETURN(out.schema, body.TakeAutomaton());
      schema_seen = true;
    } else if (word == "key") {
      (void)body.Take();
      std::string attr;
      std::string elem = SplitWord(rest, &attr);
      out.set.keys.push_back(UnaryKey{
          static_cast<Symbol>(ParseU64(elem)),
          static_cast<Symbol>(ParseU64(attr))});
    } else if (word == "inclusion") {
      (void)body.Take();
      std::istringstream fields(rest);
      uint64_t fe = 0, fa = 0, te = 0, ta = 0;
      fields >> fe >> fa >> te >> ta;
      out.set.inclusions.push_back(UnaryInclusion{
          static_cast<Symbol>(fe), static_cast<Symbol>(fa),
          static_cast<Symbol>(te), static_cast<Symbol>(ta)});
    } else if (word == "conclusion") {
      (void)body.Take();
      out.conclusion_text = rest;
    } else {
      return Status::ParseError(StringFormat(
          "unexpected line '%s' in constraints body", body.Peek().c_str()));
    }
  }
  if (!schema_seen) {
    return Status::ParseError("constraints body has no schema");
  }
  return out;
}

Result<SolveOutcome> ReplayConstraints(const ReplayInput& input,
                                       const ExecutionContext* exec) {
  FO2DT_ASSIGN_OR_RETURN(ConstraintBody body, ParseConstraintBody(input));
  if (input.facade == names::kFacadeConstraintsKeyfk) {
    LctaOptions options;
    options.max_ilp_nodes =
        static_cast<size_t>(body.budgets.Get("max_ilp_nodes", 200000));
    options.max_cuts = static_cast<size_t>(body.budgets.Get("max_cuts", 200));
    options.max_dnf_branches =
        static_cast<size_t>(body.budgets.Get("max_dnf_branches", 4096));
    options.num_threads = 1;  // single-threaded replay is deterministic
    options.exec = exec;
    return SolveOutcomeFromSat(
        CheckKeyForeignKeyConsistencyIlp(body.schema, body.set, options));
  }
  SolverOptions options;
  options.max_model_nodes =
      static_cast<size_t>(body.budgets.Get("max_model_nodes", 6));
  options.max_steps = body.budgets.Get("max_steps", 20000000);
  options.exec = exec;
  if (input.facade == names::kFacadeConstraintsImplication) {
    if (body.conclusion_text.empty()) {
      return Status::ParseError("implication body has no conclusion");
    }
    Alphabet alphabet = MakeReplayAlphabet(
        std::max(body.schema.num_symbols(), MaxCanonicalLabel(input.body)));
    FO2DT_ASSIGN_OR_RETURN(Formula conclusion,
                           ParseFormula(body.conclusion_text, &alphabet));
    return SolveOutcomeFromSat(
        CheckImplicationBounded(body.schema, body.set, conclusion, options));
  }
  return SolveOutcomeFromSat(
      CheckConsistencyBounded(body.schema, body.set, options));
}

Result<SolveOutcome> ReplayXpath(const ReplayInput& input,
                                 const ExecutionContext* exec) {
  BodyReader body{input.body};
  ParsedBudgets budgets, flags;
  size_t labels = 0;
  std::optional<TreeAutomaton> schema;
  std::vector<std::string> xpath_texts;
  while (!body.Done()) {
    if (ConsumeCommon(&body, &budgets, &flags, &labels)) continue;
    std::string rest;
    std::string word = SplitWord(body.Peek(), &rest);
    if (word == "schema") {
      (void)body.Take();
      FO2DT_ASSIGN_OR_RETURN(TreeAutomaton a, body.TakeAutomaton());
      schema = std::move(a);
    } else if (word == "xpath") {
      (void)body.Take();
      xpath_texts.push_back(rest);
    } else {
      return Status::ParseError(StringFormat(
          "unexpected line '%s' in xpath body", body.Peek().c_str()));
    }
  }
  Alphabet alphabet =
      MakeReplayAlphabet(std::max(labels, MaxCanonicalLabel(input.body)));
  std::vector<XpPath> paths;
  for (const std::string& text : xpath_texts) {
    FO2DT_ASSIGN_OR_RETURN(XpPath p, ParseXPath(text, &alphabet));
    paths.push_back(std::move(p));
  }
  SolverOptions options;
  options.max_model_nodes =
      static_cast<size_t>(budgets.Get("max_model_nodes", 6));
  options.max_steps = budgets.Get("max_steps", 20000000);
  options.exec = exec;
  const TreeAutomaton* schema_ptr = schema.has_value() ? &*schema : nullptr;
  if (input.facade == names::kFacadeXpathContainment) {
    if (paths.size() != 2) {
      return Status::ParseError("xpath.containment body needs two xpath lines");
    }
    return SolveOutcomeFromSat(
        CheckXPathContainment(paths[0], paths[1], schema_ptr, options));
  }
  if (paths.size() != 1) {
    return Status::ParseError("xpath.sat body needs one xpath line");
  }
  return SolveOutcomeFromSat(
      CheckXPathSatisfiability(paths[0], schema_ptr, options));
}

Result<CounterVec> TakeVec(std::istringstream* fields, size_t n) {
  CounterVec v(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(*fields >> v[i])) {
      return Status::ParseError("short counter vector in vata body");
    }
  }
  return v;
}

Result<SolveOutcome> ReplayVata(const ReplayInput& input,
                                const ExecutionContext* exec) {
  BodyReader body{input.body};
  ParsedBudgets budgets, flags;
  size_t labels = 0;
  VataAutomaton a;
  std::string tree_text;
  while (!body.Done()) {
    if (ConsumeCommon(&body, &budgets, &flags, &labels)) continue;
    std::string rest;
    std::string word = SplitWord(body.Peek(), &rest);
    if (word == "vata") {
      (void)body.Take();
      std::istringstream fields(rest);
      fields >> a.num_counters >> a.num_states >> a.num_labels;
    } else if (word == "accepting") {
      (void)body.Take();
      std::istringstream fields(rest);
      size_t k = 0;
      fields >> k;
      for (size_t i = 0; i < k; ++i) {
        VataState q = 0;
        fields >> q;
        a.accepting.push_back(q);
      }
    } else if (word == "leafrules") {
      size_t k = static_cast<size_t>(ParseU64(rest));
      (void)body.Take();
      for (size_t i = 0; i < k && !body.Done(); ++i) {
        std::istringstream fields(body.Take());
        VataLeafRule rule;
        fields >> rule.label >> rule.state;
        FO2DT_ASSIGN_OR_RETURN(rule.vector, TakeVec(&fields, a.num_counters));
        a.leaf_rules.push_back(std::move(rule));
      }
    } else if (word == "transitions") {
      size_t k = static_cast<size_t>(ParseU64(rest));
      (void)body.Take();
      for (size_t i = 0; i < k && !body.Done(); ++i) {
        std::istringstream fields(body.Take());
        VataTransition tr;
        fields >> tr.label >> tr.left_state;
        FO2DT_ASSIGN_OR_RETURN(tr.take_left, TakeVec(&fields, a.num_counters));
        fields >> tr.right_state;
        FO2DT_ASSIGN_OR_RETURN(tr.take_right, TakeVec(&fields, a.num_counters));
        fields >> tr.result_state;
        FO2DT_ASSIGN_OR_RETURN(tr.add, TakeVec(&fields, a.num_counters));
        a.transitions.push_back(std::move(tr));
      }
    } else if (word == "tree") {
      (void)body.Take();
      tree_text = rest;
    } else {
      return Status::ParseError(StringFormat(
          "unexpected line '%s' in vata body", body.Peek().c_str()));
    }
  }
  if (tree_text.empty()) {
    return Status::ParseError("vata body has no tree");
  }
  Alphabet alphabet = MakeReplayAlphabet(
      std::max(a.num_labels, MaxCanonicalLabel(input.body)));
  FO2DT_ASSIGN_OR_RETURN(DataTree t, ParseDataTree(tree_text, &alphabet));
  size_t max_candidates =
      static_cast<size_t>(budgets.Get("max_candidates", 100000));
  Result<bool> accepted = VataAccepts(a, t, max_candidates, exec);
  SolveOutcome outcome;
  if (accepted.ok()) {
    outcome.verdict = *accepted ? "ACCEPT" : "REJECT";
  } else {
    outcome.verdict = std::string("ERROR:") +
                      StatusCodeToString(accepted.status().code());
    if (const StopReason* reason = accepted.status().stop_reason()) {
      outcome.stop = *reason;
    }
  }
  return outcome;
}

Result<SolveOutcome> ReplayFacade(const ReplayInput& input,
                                  const ExecutionContext* exec) {
  if (input.facade == names::kFacadeFrontendSat) {
    return ReplayFrontendSat(input, exec);
  }
  if (input.facade == names::kFacadeConstraintsConsistency ||
      input.facade == names::kFacadeConstraintsImplication ||
      input.facade == names::kFacadeConstraintsKeyfk) {
    return ReplayConstraints(input, exec);
  }
  if (input.facade == names::kFacadeXpathSat ||
      input.facade == names::kFacadeXpathContainment) {
    return ReplayXpath(input, exec);
  }
  if (input.facade == names::kFacadeVataAccepts) {
    return ReplayVata(input, exec);
  }
  return Status::NotImplemented(
      StringFormat("facade '%s' has no replay path", input.facade.c_str()));
}

int Run(const std::string& arg) {
  std::string path = arg;
  if (std::filesystem::is_directory(path)) {
    path += std::string("/") + names::kBundleFileInputFo2dt;
  }
  Result<ReplayInput> input = ParseReplayFile(path);
  if (!input.ok()) return Fail("%s", input.status().message());

  // Replay never records itself (no recursive bundles), and never honors the
  // operator's FO2DT_* environment.
  FlightRecorder::Instance().Configure(FlightRecorderConfig{});

  if (!input->failpoints.empty() && !Failpoints::CompiledIn()) {
    return Fail(
        "bundle arms failpoints (%s) but this build compiled them out; "
        "rebuild with -DFO2DT_ENABLE_FAILPOINTS=ON",
        input->failpoints.front());
  }
  for (const std::string& site : input->failpoints) {
    if (!ArmCanonicalReplayInjection(site)) {
      return Fail("unknown failpoint site '%s' in bundle", site);
    }
  }

  ExecutionContext exec;
  Result<SolveOutcome> outcome = ReplayFacade(*input, &exec);
  Failpoints::Instance().DisableAll();
  if (!outcome.ok()) return Fail("replay failed: %s", outcome.status().message());

  std::map<std::string, std::string> actual;
  actual["verdict"] = outcome->verdict;
  actual["stop_kind"] = StopKindToString(outcome->stop.kind);
  actual["stop_module"] = outcome->stop.module;
  if (outcome->profile.has_value()) {
    actual["dominant_phase"] = PhaseName(outcome->profile->DominantPhase());
  }
  for (const auto& [field, value] : actual) {
    std::printf("actual %s %s\n", field.c_str(), value.c_str());
  }
  int mismatches = 0;
  for (const auto& [field, expected] : input->expects) {
    auto it = actual.find(field);
    const std::string got = it == actual.end() ? std::string("<absent>")
                                               : it->second;
    if (got != expected) {
      std::printf("MISMATCH %s: expected '%s', got '%s'\n", field.c_str(),
                  expected.c_str(), got.c_str());
      ++mismatches;
    }
  }
  if (mismatches == 0) {
    std::printf("replay outcome matches the recording (%zu field(s))\n",
                input->expects.size());
    return 0;
  }
  return 1;
}

}  // namespace
}  // namespace fo2dt

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr, "usage: fo2dt_replay <bundle-dir | input.fo2dt>\n");
    return 2;
  }
  return fo2dt::Run(argv[1]);
}
