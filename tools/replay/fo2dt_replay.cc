/// \file fo2dt_replay.cc
/// \brief Deterministic re-execution of flight-recorder post-mortem bundles.
///
/// Usage:
///   fo2dt_replay <bundle-dir | input.fo2dt>
///
/// Reads the bundle's input.fo2dt (format written by common/flight_recorder),
/// reconstructs the facade call — formula / constraint set / XPath / VATA
/// instance, schema automaton, budgets, armed failpoints — re-executes it
/// through the shared facade execution core (src/server/facade_exec.h, also
/// the engine behind fo2dtd), and diffs the outcome against the recorded
/// `expect` lines.
///
/// Exit status: 0 = outcome matches the recording, 1 = mismatch,
/// 2 = malformed input or replay infrastructure failure (e.g. the bundle
/// arms failpoints but this build compiled them out).
///
/// The replay is bit-faithful on the discrete outcome (verdict, StopReason
/// kind/module, dominant phase), not on timings: wall/cpu times will differ,
/// and the canonical failpoint injection (common/flight_recorder.h
/// ArmCanonicalReplayInjection) makes the injected phase dominate the
/// profile on both sides so DominantPhase is stable.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/failpoint.h"
#include "common/flight_recorder.h"
#include "common/registry_names.h"
#include "common/strings.h"
#include "server/facade_exec.h"

namespace fo2dt {
namespace {

struct ReplayInput {
  std::string facade;
  std::vector<std::string> body;            // facade-specific lines, in order
  std::vector<std::string> failpoints;      // sites to re-arm
  std::map<std::string, std::string> expects;  // field -> recorded value
};

int Fail(const char* fmt, const std::string& detail) {
  std::fprintf(stderr, "fo2dt_replay: ");
  std::fprintf(stderr, fmt, detail.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

/// First whitespace-delimited word of \p line; \p rest gets the remainder
/// (with the single separating space stripped).
std::string SplitWord(const std::string& line, std::string* rest) {
  size_t space = line.find(' ');
  if (space == std::string::npos) {
    *rest = "";
    return line;
  }
  *rest = line.substr(space + 1);
  return line.substr(0, space);
}

Result<ReplayInput> ParseReplayFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument(
        StringFormat("cannot open replay input '%s'", path.c_str()));
  }
  ReplayInput out;
  std::string line;
  bool header_seen = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!header_seen) {
      if (line != "fo2dt-replay v1") {
        return Status::ParseError(
            StringFormat("bad replay header '%s'", line.c_str()));
      }
      header_seen = true;
      continue;
    }
    std::string rest;
    std::string word = SplitWord(line, &rest);
    if (word == "facade") {
      out.facade = rest;
    } else if (word == "failpoint") {
      out.failpoints.push_back(rest);
    } else if (word == "expect") {
      std::string value;
      std::string field = SplitWord(rest, &value);
      out.expects[field] = value;  // value runs to end of line
    } else {
      out.body.push_back(line);
    }
  }
  if (!header_seen) return Status::ParseError("empty replay input");
  if (out.facade.empty()) {
    return Status::ParseError("replay input names no facade");
  }
  return out;
}

int Run(const std::string& arg) {
  std::string path = arg;
  if (std::filesystem::is_directory(path)) {
    path += std::string("/") + names::kBundleFileInputFo2dt;
  }
  Result<ReplayInput> input = ParseReplayFile(path);
  if (!input.ok()) return Fail("%s", input.status().message());

  // Replay never records itself (no recursive bundles), and never honors the
  // operator's FO2DT_* environment.
  FlightRecorder::Instance().Configure(FlightRecorderConfig{});

  if (!input->failpoints.empty() && !Failpoints::CompiledIn()) {
    return Fail(
        "bundle arms failpoints (%s) but this build compiled them out; "
        "rebuild with -DFO2DT_ENABLE_FAILPOINTS=ON",
        input->failpoints.front());
  }
  for (const std::string& site : input->failpoints) {
    if (!ArmCanonicalReplayInjection(site)) {
      return Fail("unknown failpoint site '%s' in bundle", site);
    }
  }

  ExecutionContext exec;
  Result<SolveOutcome> outcome =
      ExecuteFacadeBody(input->facade, input->body, &exec);
  Failpoints::Instance().DisableAll();
  if (!outcome.ok()) return Fail("replay failed: %s", outcome.status().message());

  std::map<std::string, std::string> actual;
  actual["verdict"] = outcome->verdict;
  actual["stop_kind"] = StopKindToString(outcome->stop.kind);
  actual["stop_module"] = outcome->stop.module;
  if (outcome->profile.has_value()) {
    actual["dominant_phase"] = PhaseName(outcome->profile->DominantPhase());
  }
  for (const auto& [field, value] : actual) {
    std::printf("actual %s %s\n", field.c_str(), value.c_str());
  }
  int mismatches = 0;
  for (const auto& [field, expected] : input->expects) {
    auto it = actual.find(field);
    const std::string got = it == actual.end() ? std::string("<absent>")
                                               : it->second;
    if (got != expected) {
      std::printf("MISMATCH %s: expected '%s', got '%s'\n", field.c_str(),
                  expected.c_str(), got.c_str());
      ++mismatches;
    }
  }
  if (mismatches == 0) {
    std::printf("replay outcome matches the recording (%zu field(s))\n",
                input->expects.size());
    return 0;
  }
  return 1;
}

}  // namespace
}  // namespace fo2dt

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr, "usage: fo2dt_replay <bundle-dir | input.fo2dt>\n");
    return 2;
  }
  return fo2dt::Run(argv[1]);
}
