#!/usr/bin/env python3
"""fo2dt_report: aggregate flight-recorder query logs into a regression report.

Reads one or more JSONL query logs (written by the C++ side under
FO2DT_QUERY_LOG) plus optional BENCH_*.json histories, and emits a per-phase
report: p50/p95 self wall time, effort, memory high-water, verdict,
dominant-phase and solve-cache hit/miss distributions. With --baseline it
diffs against an older log and fails (exit 1) on a p95 phase-time, memory
high-water, or cache hit-rate regression, so CI can gate on it.

Exit status (machine-readable):
  0  report produced, no regression detected
  1  regression detected against --baseline
  2  unreadable/malformed input, a degenerate log (fewer than two records,
     where p95 aggregation is meaningless), or --validate schema violations

The record schema is owned by tools/lint/registry.json (log_fields); this
tool validates against that registry, never against a hand-maintained copy.
"""

import argparse
import json
import math
import os
import sys

REGISTRY_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "lint", "registry.json")

VERDICTS = {"SAT", "UNSAT", "UNKNOWN", "ACCEPT", "REJECT"}

INT_FIELDS = {
    "v", "ts_ms", "input_size", "steps", "stop_counter", "stop_limit",
    "ilp_max_depth", "mem_high_water", "wall_ms", "cpu_ms", "threads", "seed",
}
STR_FIELDS = {
    "facade", "request_id", "input_hash", "verdict", "method", "stop_kind",
    "stop_module", "dominant_phase", "capture", "cache",
}
DICT_FIELDS = {"phases", "budgets"}

# Solve-cache disposition per record: "" = cache disabled / not consulted,
# "hit" = verdict served from cache, "miss" = looked up, solved cold.
CACHE_VALUES = {"", "hit", "miss"}


def load_registry():
    with open(REGISTRY_PATH, "r", encoding="utf-8") as f:
        reg = json.load(f)
    def names(entries):
        return [e["name"] if isinstance(e, dict) else e for e in entries]

    return {
        "log_fields": names(reg["log_fields"]),
        "phases": names(reg["phases"]),
        "facades": names(reg["facades"]),
    }


def validate_record(rec, lineno, reg, errors):
    """Appends 'line N: ...' strings to errors for every schema violation."""

    def err(msg):
        errors.append("line %d: %s" % (lineno, msg))

    if not isinstance(rec, dict):
        err("record is not a JSON object")
        return
    fields = reg["log_fields"]
    keys = list(rec.keys())
    if keys != fields:
        missing = [f for f in fields if f not in rec]
        unknown = [k for k in keys if k not in fields]
        if missing:
            err("missing field(s): %s" % ", ".join(missing))
        if unknown:
            err("unknown field(s): %s" % ", ".join(unknown))
        if not missing and not unknown:
            err("fields out of registry order")
        return
    for f in INT_FIELDS:
        if not isinstance(rec[f], int) or isinstance(rec[f], bool):
            err("field '%s' is not an integer" % f)
    for f in STR_FIELDS:
        if not isinstance(rec[f], str):
            err("field '%s' is not a string" % f)
    for f in DICT_FIELDS:
        if not isinstance(rec[f], dict):
            err("field '%s' is not an object" % f)
            return
    if rec["v"] != 1:
        err("unsupported record version %r" % (rec["v"],))
    if rec["facade"] not in reg["facades"]:
        err("unregistered facade %r" % (rec["facade"],))
    h = rec["input_hash"]
    if len(h) != 16 or any(c not in "0123456789abcdef" for c in h):
        err("input_hash %r is not 16 lowercase hex digits" % (h,))
    v = rec["verdict"]
    if v not in VERDICTS and not v.startswith("ERROR:"):
        err("verdict %r not in %s or ERROR:<code>" % (v, sorted(VERDICTS)))
    if rec["cache"] not in CACHE_VALUES:
        err("cache %r not in %s" % (rec["cache"], sorted(CACHE_VALUES)))
    dom = rec["dominant_phase"]
    if dom and dom not in reg["phases"]:
        err("dominant_phase %r not a registered phase" % (dom,))
    for phase, entry in rec["phases"].items():
        if phase not in reg["phases"]:
            err("phase %r not a registered phase" % (phase,))
            continue
        if not isinstance(entry, dict) or set(entry) != {"ms", "effort",
                                                         "mem_peak"}:
            err("phase %r entry must have exactly ms/effort/mem_peak" % phase)
            continue
        if not isinstance(entry["ms"], (int, float)):
            err("phase %r ms is not a number" % phase)
        for k in ("effort", "mem_peak"):
            if not isinstance(entry[k], int):
                err("phase %r %s is not an integer" % (phase, k))
    for key, value in rec["budgets"].items():
        if not isinstance(value, int):
            err("budget %r is not an integer" % (key,))
    if rec["phases"] and dom == "":
        err("record has phases but no dominant_phase")


def read_log(paths, reg, errors):
    records = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as f:
                lines = f.readlines()
        except OSError as e:
            raise SystemExit("fo2dt_report: %s" % e)
        for i, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as e:
                errors.append("%s line %d: invalid JSON (%s)" % (path, i, e))
                continue
            validate_record(rec, i, reg, errors)
            records.append(rec)
    return records


def percentile(samples, q):
    """Nearest-rank percentile; deterministic for golden output."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class PhaseStats:
    def __init__(self):
        self.ms = []
        self.effort = 0
        self.mem_peak = 0

    def add(self, entry):
        self.ms.append(float(entry["ms"]))
        self.effort += int(entry["effort"])
        self.mem_peak = max(self.mem_peak, int(entry["mem_peak"]))


def aggregate(records):
    agg = {
        "count": len(records),
        "verdicts": {},
        "dominant": {},
        "facades": {},
        "phases": {},
        "mem_high_water": [],
        "captures": sum(1 for r in records if r["capture"]),
        "cache_hits": sum(1 for r in records if r["cache"] == "hit"),
        "cache_misses": sum(1 for r in records if r["cache"] == "miss"),
    }
    for rec in records:
        agg["verdicts"][rec["verdict"]] = agg["verdicts"].get(
            rec["verdict"], 0) + 1
        if rec["dominant_phase"]:
            agg["dominant"][rec["dominant_phase"]] = agg["dominant"].get(
                rec["dominant_phase"], 0) + 1
        agg["facades"][rec["facade"]] = agg["facades"].get(rec["facade"], 0) + 1
        agg["mem_high_water"].append(int(rec["mem_high_water"]))
        for phase, entry in rec["phases"].items():
            agg["phases"].setdefault(phase, PhaseStats()).add(entry)
    return agg


def bench_phase_samples(paths, errors):
    """phase -> [ms] from BENCH_*.json, skipping skipped/errored entries."""
    samples = {}
    skipped = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, ValueError) as e:
            errors.append("%s: %s" % (path, e))
            continue
        for entry in data.get("benchmarks", []):
            if entry.get("skipped") or entry.get("error_occurred"):
                skipped += 1
                continue
            for key, value in entry.items():
                if key.startswith("phase_") and key.endswith("_ms"):
                    phase = key[len("phase_"):-len("_ms")]
                    samples.setdefault(phase, []).append(float(value))
    return samples, skipped


def cache_hit_rate(agg):
    """Fraction of cache-consulting solves served warm; None if none were."""
    lookups = agg["cache_hits"] + agg["cache_misses"]
    if lookups == 0:
        return None
    return agg["cache_hits"] / float(lookups)


def modal(counter):
    """Deterministic argmax: highest count, ties broken alphabetically."""
    if not counter:
        return ""
    return sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]


def compare(current, baseline, args):
    """Returns (lines, regressions) diffing current vs baseline aggregates."""
    lines = []
    regressions = []
    cur_dom = modal(current["dominant"])
    base_dom = modal(baseline["dominant"])
    if base_dom and cur_dom and cur_dom != base_dom:
        lines.append("dominant-phase shift: %s -> %s" % (base_dom, cur_dom))
    for phase in sorted(set(current["phases"]) | set(baseline["phases"])):
        cur = current["phases"].get(phase)
        base = baseline["phases"].get(phase)
        if cur is None:
            lines.append("phase %-14s absent in current (was p95 %.3f ms)" %
                         (phase, percentile(base.ms, 95)))
            continue
        if base is None:
            lines.append("phase %-14s new in current (p95 %.3f ms)" %
                         (phase, percentile(cur.ms, 95)))
            continue
        cur_p95 = percentile(cur.ms, 95)
        base_p95 = percentile(base.ms, 95)
        delta = cur_p95 - base_p95
        ratio = cur_p95 / base_p95 if base_p95 > 0 else float("inf")
        marker = ""
        if delta > args.p95_abs_ms and ratio > args.p95_ratio:
            marker = "  REGRESSION"
            regressions.append(
                "phase %s p95 %.3f ms -> %.3f ms (x%.2f)" %
                (phase, base_p95, cur_p95, ratio))
        # p99 is reported (the tail the telemetry plane watches) but only
        # p95 gates: per-phase sample counts are small enough that p99 is
        # one outlier record, too noisy to fail CI on.
        lines.append(
            "phase %-14s p50 %.3f -> %.3f ms   p95 %.3f -> %.3f ms   "
            "p99 %.3f -> %.3f ms%s" %
            (phase, percentile(base.ms, 50), percentile(cur.ms, 50),
             base_p95, cur_p95, percentile(base.ms, 99),
             percentile(cur.ms, 99), marker))
    cur_rate = cache_hit_rate(current)
    base_rate = cache_hit_rate(baseline)
    if base_rate is not None and cur_rate is not None:
        marker = ""
        if base_rate - cur_rate > args.cache_hit_drop:
            marker = "  REGRESSION"
            regressions.append(
                "cache hit rate %.2f%% -> %.2f%%" %
                (100.0 * base_rate, 100.0 * cur_rate))
        lines.append("cache hit rate %.2f%% -> %.2f%%%s" %
                     (100.0 * base_rate, 100.0 * cur_rate, marker))
    elif base_rate is not None:
        lines.append("cache hit rate %.2f%% -> (cache not consulted)" %
                     (100.0 * base_rate))
    cur_mem = percentile(current["mem_high_water"], 95)
    base_mem = percentile(baseline["mem_high_water"], 95)
    if base_mem > 0 and cur_mem - base_mem > args.mem_abs_bytes and \
            cur_mem / base_mem > args.mem_ratio:
        regressions.append(
            "mem_high_water p95 %d -> %d bytes (x%.2f)" %
            (base_mem, cur_mem, cur_mem / base_mem))
        lines.append("mem_high_water p95 %d -> %d bytes  REGRESSION" %
                     (base_mem, cur_mem))
    else:
        lines.append("mem_high_water p95 %d -> %d bytes" % (base_mem, cur_mem))
    return lines, regressions


def format_report(agg, bench, bench_skipped, log_names):
    lines = []
    lines.append("fo2dt_report: %d record(s) from %s" %
                 (agg["count"], ", ".join(log_names)))
    lines.append("captures: %d" % agg["captures"])
    rate = cache_hit_rate(agg)
    if rate is not None:
        lines.append("solve cache: hits %d  misses %d  hit rate %.2f%%" %
                     (agg["cache_hits"], agg["cache_misses"], 100.0 * rate))
    lines.append("verdicts: " + ", ".join(
        "%s=%d" % (k, v) for k, v in sorted(agg["verdicts"].items())))
    if agg["dominant"]:
        lines.append("dominant phases: " + ", ".join(
            "%s=%d" % (k, v) for k, v in sorted(agg["dominant"].items())))
    lines.append("facades: " + ", ".join(
        "%s=%d" % (k, v) for k, v in sorted(agg["facades"].items())))
    for phase in sorted(agg["phases"]):
        st = agg["phases"][phase]
        lines.append(
            "phase %-14s calls %-4d p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  "
            "effort %d  mem_peak %d" %
            (phase, len(st.ms), percentile(st.ms, 50), percentile(st.ms, 95),
             percentile(st.ms, 99), st.effort, st.mem_peak))
    if agg["mem_high_water"]:
        lines.append("mem_high_water p50 %d  p95 %d  p99 %d  max %d bytes" %
                     (percentile(agg["mem_high_water"], 50),
                      percentile(agg["mem_high_water"], 95),
                      percentile(agg["mem_high_water"], 99),
                      max(agg["mem_high_water"])))
    if bench:
        lines.append("bench histories (%d skipped entr%s excluded):" %
                     (bench_skipped, "y" if bench_skipped == 1 else "ies"))
        for phase in sorted(bench):
            lines.append(
                "bench phase %-14s n %-4d p50 %.3f ms  p95 %.3f ms  "
                "p99 %.3f ms" %
                (phase, len(bench[phase]), percentile(bench[phase], 50),
                 percentile(bench[phase], 95), percentile(bench[phase], 99)))
    return lines


def main():
    parser = argparse.ArgumentParser(
        description="aggregate fo2dt query logs into a regression report")
    parser.add_argument("logs", nargs="+", help="query-log JSONL file(s)")
    parser.add_argument("--baseline", help="baseline query-log JSONL to diff")
    parser.add_argument("--bench", action="append", default=[],
                        metavar="BENCH_JSON",
                        help="BENCH_*.json history to fold in (repeatable)")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check only; exit 2 on any violation")
    parser.add_argument("--p95-ratio", type=float, default=1.5,
                        help="p95 ratio above which a phase regresses")
    parser.add_argument("--p95-abs-ms", type=float, default=1.0,
                        help="minimum absolute p95 delta (ms) to regress")
    parser.add_argument("--mem-ratio", type=float, default=1.5,
                        help="mem high-water p95 ratio to regress")
    parser.add_argument("--mem-abs-bytes", type=int, default=16384,
                        help="minimum absolute mem delta (bytes) to regress")
    parser.add_argument("--cache-hit-drop", type=float, default=0.10,
                        help="absolute solve-cache hit-rate drop (fraction) "
                             "vs baseline above which the report regresses")
    parser.add_argument("--out", help="write the report here instead of stdout")
    args = parser.parse_args()

    reg = load_registry()
    errors = []
    records = read_log(args.logs, reg, errors)
    if errors:
        for e in errors:
            print("fo2dt_report: %s" % e, file=sys.stderr)
        return 2
    if args.validate:
        print("fo2dt_report: %d record(s) valid against %d-field registry "
              "schema" % (len(records), len(reg["log_fields"])))
        return 0
    if len(records) < 2:
        # A p95 over zero or one sample is just that sample (or nothing);
        # reporting it as a percentile would let a single lucky query pass a
        # CI gate. Refuse rather than mislead.
        print("fo2dt_report: %d record(s) in %s; need at least 2 for "
              "percentile aggregation (a p95 of a single sample is "
              "meaningless)" % (len(records), ", ".join(args.logs)),
              file=sys.stderr)
        return 2

    bench, bench_skipped = bench_phase_samples(args.bench, errors)
    if errors:
        for e in errors:
            print("fo2dt_report: %s" % e, file=sys.stderr)
        return 2

    agg = aggregate(records)
    lines = format_report(agg, bench, bench_skipped,
                          [os.path.basename(p) for p in args.logs])

    regressions = []
    if args.baseline:
        base_errors = []
        base_records = read_log([args.baseline], reg, base_errors)
        if base_errors or len(base_records) < 2:
            for e in base_errors:
                print("fo2dt_report: %s" % e, file=sys.stderr)
            print("fo2dt_report: unusable baseline %s (%d record(s); need at "
                  "least 2 for percentile aggregation)" %
                  (args.baseline, len(base_records)), file=sys.stderr)
            return 2
        lines.append("--- vs baseline %s ---" %
                     os.path.basename(args.baseline))
        cmp_lines, regressions = compare(agg, aggregate(base_records), args)
        lines.extend(cmp_lines)
        if regressions:
            lines.append("REGRESSIONS (%d):" % len(regressions))
            lines.extend("  " + r for r in regressions)
        else:
            lines.append("no regressions")

    text = "\n".join(lines) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
