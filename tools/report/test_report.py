#!/usr/bin/env python3
"""Self-test for fo2dt_report.py against the committed fixtures.

Covers the three exit-status contracts (0 clean, 1 regression, 2 invalid),
golden-report stability, schema validation (both the accept and the reject
direction, field by field), and the skipped-benchmark exclusion.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPORT = os.path.join(HERE, "fo2dt_report.py")
FIXTURES = os.path.join(HERE, "fixtures")

failures = []


def check(name, ok, detail=""):
    if ok:
        print("ok %s" % name)
    else:
        failures.append(name)
        print("FAIL %s%s" % (name, (": " + detail) if detail else ""))


def run(args):
    proc = subprocess.run(
        [sys.executable, REPORT] + args, capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def fixture(name):
    return os.path.join(FIXTURES, name)


def main():
    # Exit-status contract.
    code, out, _ = run([fixture("current_ok.jsonl"),
                        "--baseline", fixture("baseline.jsonl")])
    check("ok series vs baseline exits 0", code == 0, "exit %d" % code)
    check("ok series reports no regressions", "no regressions" in out)

    code, out, _ = run([fixture("current_regressed.jsonl"),
                        "--baseline", fixture("baseline.jsonl")])
    check("regressed series vs baseline exits 1", code == 1, "exit %d" % code)
    check("regression names the lcta phase", "phase lcta p95" in out)
    check("regression reports dominant-phase shift",
          "dominant-phase shift: bounded_search -> lcta" in out)
    check("regression reports memory high-water trend",
          "mem_high_water p95 65536 -> 131072 bytes (x2.00)" in out)
    check("regression reports cache hit-rate drop",
          "cache hit rate 66.67% -> 16.67%  REGRESSION" in out)

    # The hit-rate gate is tunable: a permissive threshold lets the same
    # drop pass (the phase-time regression still fails the run).
    code, out, _ = run([fixture("current_regressed.jsonl"),
                        "--baseline", fixture("baseline.jsonl"),
                        "--cache-hit-drop", "0.9"])
    check("permissive --cache-hit-drop unmarks the hit-rate line",
          "cache hit rate 66.67% -> 16.67%\n" in out, out)

    # Golden reports: byte-stable output for both comparisons.
    for current, golden, want in (
            ("current_ok.jsonl", "golden_ok_report.txt", 0),
            ("current_regressed.jsonl", "golden_regressed_report.txt", 1)):
        with tempfile.TemporaryDirectory() as tmp:
            out_path = os.path.join(tmp, "report.txt")
            code, _, _ = run([fixture(current),
                              "--baseline", fixture("baseline.jsonl"),
                              "--out", out_path])
            with open(out_path, "r", encoding="utf-8") as f:
                got = f.read()
        with open(fixture(golden), "r", encoding="utf-8") as f:
            expected = f.read()
        check("golden report %s matches" % golden,
              code == want and got == expected)

    # Schema validation accepts every committed fixture record.
    code, out, _ = run(["--validate", fixture("baseline.jsonl"),
                        fixture("current_ok.jsonl"),
                        fixture("current_regressed.jsonl")])
    check("fixtures pass --validate", code == 0, "exit %d" % code)

    # Reject direction: each mutation of a valid record must fail validation.
    with open(fixture("baseline.jsonl"), "r", encoding="utf-8") as f:
        good = json.loads(f.readline())
    mutations = {
        "missing field": {k: v for k, v in good.items() if k != "wall_ms"},
        "unknown field": dict(good, bogus_field=1),
        "bad version": dict(good, v=2),
        "unregistered facade": dict(good, facade="frontend.bogus"),
        "short hash": dict(good, input_hash="abc"),
        "bad verdict": dict(good, verdict="MAYBE"),
        "bad dominant phase": dict(good, dominant_phase="warp"),
        "string wall_ms": dict(good, wall_ms="3"),
        "bad phase entry": dict(
            good, phases=dict(good["phases"], scott={"ms": 1.0})),
        "bad cache disposition": dict(good, cache="warm"),
        "integer request_id": dict(good, request_id=7),
    }
    for name, bad in mutations.items():
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bad.jsonl")
            with open(path, "w", encoding="utf-8") as f:
                f.write(json.dumps(bad) + "\n")
            code, _, err = run(["--validate", path])
        check("--validate rejects %s" % name, code == 2,
              "exit %d, stderr %r" % (code, err.strip()))

    # Field order matters: same keys, shuffled, must be rejected.
    shuffled = dict(reversed(list(good.items())))
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "shuffled.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write(json.dumps(shuffled) + "\n")
        code, _, err = run(["--validate", path])
    check("--validate rejects out-of-order fields", code == 2,
          "exit %d" % code)

    # Malformed JSON and empty logs are hard errors, not silent successes.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "garbage.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json\n")
        code, _, _ = run([path])
        check("malformed JSONL exits 2", code == 2, "exit %d" % code)
        empty = os.path.join(tmp, "empty.jsonl")
        open(empty, "w").close()
        code, _, err = run([empty])
        check("empty log exits 2", code == 2, "exit %d" % code)
        check("empty log explains the record floor",
              "need at least 2" in err, err.strip())

    # One record is as degenerate as zero: a p95 of a single sample would
    # let one lucky query pass a CI gate. Hard error with a clear message,
    # both as the current log and as the baseline. --validate still accepts
    # it (schema checking has no sample-size floor).
    code, _, err = run([fixture("single_record.jsonl")])
    check("single-record log exits 2", code == 2, "exit %d" % code)
    check("single-record message names the floor",
          "need at least 2" in err and "1 record(s)" in err, err.strip())
    code, _, err = run([fixture("current_ok.jsonl"),
                        "--baseline", fixture("single_record.jsonl")])
    check("single-record baseline exits 2", code == 2, "exit %d" % code)
    check("single-record baseline message is explicit",
          "unusable baseline" in err and "need at least 2" in err,
          err.strip())
    code, _, _ = run(["--validate", fixture("single_record.jsonl")])
    check("single-record log still passes --validate", code == 0,
          "exit %d" % code)
    # Two records across two files clears the floor (the count is global,
    # not per file).
    code, _, _ = run([fixture("single_record.jsonl"),
                      fixture("single_record.jsonl")])
    check("two single-record logs aggregate fine", code == 0,
          "exit %d" % code)

    # Bench folding: skipped entries are excluded and counted.
    bench = {
        "benchmarks": [
            {"name": "BM_A/1", "phase_lcta_ms": 1.0, "phase_lcta_effort": 5},
            {"name": "BM_A/2", "phase_lcta_ms": 2.0, "skipped": True},
            {"name": "BM_A/3", "phase_ilp_ms": 0.5, "error_occurred": True},
        ]
    }
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(bench, f)
        code, out, _ = run([fixture("current_ok.jsonl"), "--bench", path])
    check("bench skipped entries excluded", code == 0 and
          "2 skipped entries excluded" in out and
          "bench phase lcta           n 1" in out, out)

    print("test_report: %d failure(s)" % len(failures))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
