// Fixture: checkpoint-reachability. Hot-module loops whose governor poll
// lives (or fails to live) behind a function call. The shallow
// no-checkpoint rule cannot tell these apart; the deep call graph can.
#include "common/execution_context.h"

namespace fo2dt {

// Never polls: loops that only call this are findings.
static int ChewWithoutPolling(int x) { return x * 2 + 1; }

// Polls the governor directly.
static Status PollDirectly(const ExecutionContext* exec) {
  return exec->Check(names::kModLctaEmptiness);
}

// Polls transitively (one hop).
static Status PollThroughMiddleman(const ExecutionContext* exec) {
  return PollDirectly(exec);
}

int LoopCallingNonPollingHelper(int n) {
  int acc = 0;
  while (acc < n) {
    acc = ChewWithoutPolling(acc);
  }
  return acc;
}

int LoopCallingPollingHelper(const ExecutionContext* exec, int n) {
  int acc = 0;
  while (acc < n) {
    if (!PollDirectly(exec).ok()) break;
    ++acc;
  }
  return acc;
}

int LoopCallingTransitivePoller(const ExecutionContext* exec, int n) {
  int acc = 0;
  while (acc < n) {
    if (!PollThroughMiddleman(exec).ok()) break;
    ++acc;
  }
  return acc;
}

int LoopWithStaleSuppression(const ExecutionContext* exec, int n) {
  int acc = 0;
  // fo2dt-lint: allow(no-checkpoint, poll happens in PollDirectly)
  while (acc < n) {
    if (!PollDirectly(exec).ok()) break;
    ++acc;
  }
  return acc;
}

}  // namespace fo2dt
