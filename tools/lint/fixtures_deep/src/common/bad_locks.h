// Fixture: lock-annotation. Raw std::mutex members are banned (the ranked
// fo2dt::Mutex ties every lock to the registry hierarchy), and each
// std::atomic declaration needs an adjacent `// atomic:` contract comment.
#pragma once

#include <atomic>
#include <mutex>

namespace fo2dt {

class BadLocks {
 public:
  int Get() const;

 private:
  // Finding: raw std::mutex instead of the ranked wrapper.
  std::mutex mu_;
  // Finding: no ordering contract on the line or in a comment above.
  std::atomic<int> unexplained_{0};
};

class GoodLocks {
 private:
  // atomic: monotone counter; relaxed increments, relaxed reads — readers
  // only need an eventually-consistent total.
  std::atomic<int> counted_{0};
  // atomic: a single comment covers this contiguous group — release store
  // on publish, acquire load on read.
  std::atomic<bool> published_{false};
  std::atomic<int> generation_{0};
};

}  // namespace fo2dt
