// Fixture: arena-escape. SolveArena storage is frame-scoped and
// thread-confined; pointers derived from it must not be returned or stored
// to a field.
#include "common/arena.h"

namespace fo2dt {

struct Holder {
  uint64_t* stash_ = nullptr;
  void Remember();
};

// Finding: returns a tainted local.
uint64_t* LeakByReturn(size_t n) {
  SolveArena::Frame frame;
  uint64_t* bits = SolveArena::ThreadLocal().AllocateArray<uint64_t>(n);
  bits[0] = 1;
  return bits;
}

// Finding: returns the allocation expression directly.
void* LeakByDirectReturn(size_t n) {
  SolveArena::Frame frame;
  return SolveArena::ThreadLocal().Allocate(n, 8);
}

// Finding: stores a tainted local into a member field.
void Holder::Remember() {
  SolveArena::Frame frame;
  uint64_t* scratch = SolveArena::ThreadLocal().AllocateArray<uint64_t>(4);
  stash_ = scratch;
}

// Finding: a taint that flows through an alias before returning.
uint64_t* LeakThroughAlias(size_t n) {
  SolveArena::Frame frame;
  uint64_t* base = SolveArena::ThreadLocal().AllocateArray<uint64_t>(n);
  uint64_t* cursor = base;
  return cursor;
}

// Clean: the scratch dies with the frame.
uint64_t SumWithinFrame(size_t n) {
  SolveArena::Frame frame;
  uint64_t* scratch = SolveArena::ThreadLocal().AllocateArray<uint64_t>(n);
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += scratch[i];
  return total;
}

}  // namespace fo2dt
