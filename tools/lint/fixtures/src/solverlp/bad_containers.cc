// Fixture: ordered node-based containers on a flat-core hot path.
#include <map>
#include <set>

namespace fo2dt {

void BadContainers() {
  std::set<int> basis;              // finding: std::set
  std::map<int, int> col_to_row;    // finding: std::map
  std::multiset<int> weights;       // finding: std::multiset
  std::multimap<int, int> edges;    // finding: std::multimap
  basis.insert(static_cast<int>(weights.size() + edges.size() +
                                col_to_row.size()));
}

// A mention in a comment must not fire: std::map is fine to talk about.
void NotFindings() {
  const char* doc = "std::set in a string literal is not a finding";
  (void)doc;
  // fo2dt-lint: allow(no-ordered-containers, fixture for the audited path)
  std::set<int> audited;
  audited.insert(1);
}

}  // namespace fo2dt
