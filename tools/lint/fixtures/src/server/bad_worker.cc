// Lint fixture: a solve-server worker loop that never polls its
// cancellation token. src/server is a hot module for the no-checkpoint
// rule — a worker loop without a token poll cannot be cancelled by client
// disconnect, the watchdog, or shutdown, wedging a daemon thread forever.
// Never compiled; see expected_findings.txt for the golden output.
#include "common/execution_context.h"

namespace fo2dt {

int UnpolledWorkerLoop(int queue_depth) {
  int handled = 0;
  while (queue_depth > 0) {  // finding: no-checkpoint
    --queue_depth;
    ++handled;
  }
  return handled;
}

Status PolledWorkerLoop(const CancellationToken& token, int queue_depth) {
  while (queue_depth > 0) {  // polls the token: clean
    if (token.IsCancelled()) return Status::Cancelled("drain");
    --queue_depth;
  }
  return Status::OK();
}

}  // namespace fo2dt
