// Lint fixture: phase timer sites for the timer-memory-scope rule. This
// file is never compiled — it exists so tools/lint/test_lint.py can prove
// the rule fires on a timer with no matching memory scope and stays quiet
// on paired sites, optional emplaces, and pointer declarations.
#include "common/metrics.h"

namespace fo2dt {

void TimerWithoutMemoryScope(const ExecutionContext* exec) {
  ScopedPhaseTimer timer(Phase::kLcta, exec);  // finding: timer-memory-scope
  timer.AddEffort(1);
}

void TimerWithMemoryScope(const ExecutionContext* exec) {
  ScopedPhaseTimer timer(Phase::kLcta, exec);  // paired below: clean
  ScopedPhaseMemory mem(Phase::kLcta, exec);
  timer.AddEffort(1);
}

void EmplacedTimerWithoutMemoryScope(const ExecutionContext* exec) {
  std::optional<ScopedPhaseTimer> timer;
  timer.emplace(Phase::kIlp, exec);  // finding: timer-memory-scope
  timer.reset();
}

void EmplacedNonTimer(const ExecutionContext* exec) {
  std::optional<ScopedPhaseMemory> mem;
  mem.emplace(Phase::kIlp, exec);  // not a timer: clean
  mem.reset();
}

void PointerDeclarationIsNotASite(ScopedPhaseTimer* timer) {
  timer->AddEffort(1);  // no construction here: clean
}

}  // namespace fo2dt
