// Lint fixture: known-bad loops for the no-checkpoint rule and the
// suppression protocol. This file is never compiled — it exists so
// tools/lint/test_lint.py can prove each finding class actually fires
// (see expected_findings.txt for the golden output).
#include "common/execution_context.h"
#include "common/registry_names.h"

namespace fo2dt {

int UnpolledWhile(int n) {
  int i = 0;
  while (i < n) {  // finding: no-checkpoint
    ++i;
  }
  return i;
}

int UnpolledDoWhile(int n) {
  int i = 0;
  do {  // finding: no-checkpoint
    ++i;
  } while (i < n);
  return i;
}

int UnpolledForever(int n) {
  int i = 0;
  for (;;) {  // finding: no-checkpoint
    if (++i == n) break;
  }
  return i;
}

int CountedForLoop(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += i;  // bounded by construction: clean
  return acc;
}

Status PolledWhile(const ExecutionContext* exec, int n) {
  ExecCheckpoint checkpoint(exec, nullptr, names::kModLctaEmptiness);
  int i = 0;
  while (i < n) {  // polls the governor: clean
    FO2DT_RETURN_NOT_OK(checkpoint.Tick());
    ++i;
  }
  return Status::OK();
}

int SuppressedWithReason(int n) {
  int i = 0;
  // fo2dt-lint: allow(no-checkpoint, fixture loop bounded by the argument n)
  while (i < n) ++i;  // audited suppression: clean
  return i;
}

int SuppressedWithoutReason(int n) {
  int i = 0;
  while (i < n) ++i;  // fo2dt-lint: allow(no-checkpoint)
  return i;  // the loop is suppressed but the empty reason is a finding
}

int UnknownRuleSuppression(int n) {
  // fo2dt-lint: allow(made-up-rule, no such rule exists)
  return n;  // finding: bad-suppression (unknown rule)
}

int UnusedSuppression(int n) {
  // fo2dt-lint: allow(no-raw-rand, nothing here draws randomness)
  return n;  // finding: bad-suppression (nothing is flagged here)
}

}  // namespace fo2dt
