// Lint fixture: failpoint sites that bypass the registry.
#include "common/failpoint.h"
#include "common/registry_names.h"

namespace fo2dt {

void InlineLiteralSite(bool* flag) {
  FO2DT_FAILPOINT("inlinename", flag);  // finding: unregistered-failpoint
}

void UnknownConstantSite(bool* flag) {
  FO2DT_FAILPOINT(kFpMadeUp, flag);  // finding: unregistered-failpoint
}

}  // namespace fo2dt
