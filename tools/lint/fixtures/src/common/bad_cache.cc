// Fixture: solve-cache lookups that bypass the hit/miss metric contract.
#include "common/registry_names.h"
#include "common/solve_cache.h"

namespace fo2dt {

void UnobservedLookups() {
  SolveCache& cache = SolveCache::Instance();
  // Missing both metric constants entirely.
  auto a = cache.Lookup("k", "hits", "misses");
  // A sub-memo lookup passing only one registered cache metric.
  auto b = cache.LookupSub("k", names::kMetricCacheSubHits, "nope");
  (void)a;
  (void)b;
}

}  // namespace fo2dt
