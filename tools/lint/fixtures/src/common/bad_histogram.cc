// Fixture: Histogram constructions that bypass the registered-name contract.
#include "common/metrics.h"
#include "common/registry_names.h"

namespace fo2dt {

void UnscrapableHistograms() {
  // Inline string literal: the series exists but the registry never saw it.
  Histogram ad_hoc{"my.private_ms"};
  // Paren form with a registered constant of the wrong category (a span
  // name is not a histogram metric).
  Histogram wrong_category(names::kSpanLctaSolveRoot);
  (void)ad_hoc;
  (void)wrong_category;
}

}  // namespace fo2dt
