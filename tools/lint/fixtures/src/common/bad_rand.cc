// Lint fixture: raw randomness instead of the seeded RandomSource.
#include <cstdlib>
#include <random>

namespace fo2dt {

int WeakSeed() {
  std::random_device rd;  // finding: no-raw-rand
  std::mt19937 gen(rd());  // finding: no-raw-rand
  int draw = rand() % 3;  // finding: no-raw-rand
  return static_cast<int>(gen() % 7) + draw;
}

}  // namespace fo2dt
