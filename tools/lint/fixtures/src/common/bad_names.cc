// Lint fixture: dotted-name literals and stale names:: constants.
#include "common/registry_names.h"

namespace fo2dt {

// finding: unregistered-name (duplicates the registered "lcta.emptiness")
const char* RegisteredDuplicate() { return "lcta.emptiness"; }

// finding: unregistered-name (nobody registered this dotted name)
const char* NeverRegistered() { return "nobody.registered_this"; }

// finding: unknown-constant (the registry defines no such module)
const char* StaleConstant() { return names::kModDoesNotExist; }

}  // namespace fo2dt
