// Lint fixture: header hygiene violations — an old-style include guard
// instead of the pragma the project standardizes on, and a namespace
// leaked into every includer.
#ifndef FO2DT_FIXTURE_BAD_HEADER_H_
#define FO2DT_FIXTURE_BAD_HEADER_H_

#include <vector>

using namespace std;  // finding: header-hygiene

inline int Twice(int x) { return x * 2; }

#endif  // FO2DT_FIXTURE_BAD_HEADER_H_
