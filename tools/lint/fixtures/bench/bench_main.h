// Lint fixture: emits a counter grammar that disagrees with the registry's
// <prefix><phase><suffix> contract (wrong prefix/suffix, no PhaseName()).
#pragma once

#include <string>

namespace fo2dt {

inline std::string CounterKey(const char* phase) {
  return std::string("ph_") + phase + "_millis";
}

}  // namespace fo2dt
