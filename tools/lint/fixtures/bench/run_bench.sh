#!/bin/sh
# Lint fixture: asserts the wrong counter prefix on the committed reports,
# so the bench-key-mismatch rule must flag the missing registry prefix.
set -eu
grep -q '"wrong_' BENCH_fake.json
