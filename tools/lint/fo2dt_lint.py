#!/usr/bin/env python3
"""fo2dt_lint: domain-invariant static checker for the fo2dt solver pipeline.

The decision procedure's correctness rests on invariants the C++ compiler
cannot see. This checker parses src/** (plus the bench counter contract) and
enforces them:

  no-checkpoint          unbounded loops (while / do-while / for(;;)) in hot
                         solver modules must poll the execution governor
                         (ExecCheckpoint::Tick/Fire, ExecutionContext::Check,
                         CancellationToken::IsCancelled, FirstWinsFanout::
                         Abandoned) inside the loop body, so deadlines and
                         cancellation actually fire.
  unregistered-name      governor module strings, trace span names, metric
                         keys — any dotted name literal — must come from the
                         generated registry header (src/common/
                         registry_names.h); inline literals drift.
  unknown-constant       a names::k... reference that the registry does not
                         define (catches stale references after a registry
                         edit without recompiling).
  unregistered-failpoint FO2DT_FAILPOINT sites must name a failpoint
                         registered in tools/lint/registry.json, via its
                         names::kFp... constant.
  header-hygiene         headers must start include protection with
                         `#pragma once` and must not contain
                         `using namespace` (headers leak it into every
                         includer).
  bench-key-mismatch     the counter keys bench_main.h emits and the keys
                         run_bench.sh asserts on the committed BENCH_*.json
                         must both follow the registry's bench counter
                         grammar (<prefix><phase><suffix>).
  no-raw-rand            rand()/srand()/std::random_device/std::mt19937 are
                         banned; all randomness flows through the seeded,
                         thread-confined common/random.h RandomSource.
  cache-metrics          every solve-cache Lookup/LookupSub call site must
                         pass registered cache hit and miss metric constants
                         (names::kMetricCache...), so no cache lookup can
                         run unobserved by the MetricsRegistry.
  histogram-metrics      every Histogram construction site must name a
                         registered histogram metric constant
                         (names::kMetricHist...); an ad-hoc name makes the
                         series invisible to the registry exposition and to
                         fo2dt_top.
  timer-memory-scope     every ScopedPhaseTimer construction must open the
                         matching ScopedPhaseMemory scope for the same phase
                         nearby, so the flight recorder's per-phase memory
                         high-water stays in lockstep with the phase timers.
  no-ordered-containers  std::set / std::map (and the multi variants) are
                         banned in the flat-core hot modules (registry
                         ordered_containers.hot_dirs): the solve paths run on
                         bitsets, CSR indexes, sorted vectors and arena
                         scratch, and a node-based container reintroduced
                         there silently reverts the locality win. Audited
                         exceptions live in the registry allowlist.
  bad-suppression        a fo2dt-lint suppression comment that is malformed,
                         names an unknown rule, or lacks a reason.

Deep mode (--deep) adds three AST-grade rules driven by a call-graph /
member-table frontend (libclang over compile_commands.json when available,
a built-in syntactic frontend otherwise — see tools/lint/deep_lint.py):

  checkpoint-reachability  supersedes no-checkpoint in hot modules: a loop
                           is clean if a governor poll is reachable through
                           the functions it calls, not just lexically inside
                           the body. Loops that delegate polling to a callee
                           no longer need an allow() — and a now-redundant
                           allow(no-checkpoint) is flagged as unused.
  arena-escape             a pointer derived from SolveArena (thread-local,
                           frame-rewound storage) must not be returned or
                           stored to a field; it dangles when the frame
                           unwinds and races when another thread reads it.
  lock-annotation          concurrency metadata coverage: raw std::mutex
                           members are banned (use the ranked fo2dt::Mutex),
                           and every std::atomic declaration needs an
                           adjacent `// atomic:` contract comment (or a
                           capability annotation) stating its ordering
                           protocol.

Suppressions: append `// fo2dt-lint: allow(<rule>, <reason>)` to the flagged
line or place it on the line directly above. The reason is mandatory — an
audited suppression must say *why* the invariant does not apply, e.g.
    while (!work.empty()) {  // fo2dt-lint: allow(no-checkpoint, worklist is
                             // bounded by the closed state set)

Exit status: 0 when clean, 1 when findings were reported, 2 on usage errors.

Usage:
  python3 tools/lint/fo2dt_lint.py [--root REPO] [--format text|json]
"""

import argparse
import json
import os
import re
import sys

RULES = (
    "no-checkpoint",
    "unregistered-name",
    "unknown-constant",
    "unregistered-failpoint",
    "header-hygiene",
    "bench-key-mismatch",
    "no-raw-rand",
    "cache-metrics",
    "histogram-metrics",
    "timer-memory-scope",
    "no-ordered-containers",
    "bad-suppression",
    # Deep (--deep) rules; implemented in tools/lint/deep_lint.py.
    "checkpoint-reachability",
    "arena-escape",
    "lock-annotation",
)

# Modules whose loops run budget-scale work (the Theorem 1 pipeline's hot
# layers), plus the solve server, whose accept/reader/worker loops must poll
# cancellation tokens or a stuck client could wedge a daemon thread.
HOT_MODULE_DIRS = (
    os.path.join("src", "solverlp"),
    os.path.join("src", "lcta"),
    os.path.join("src", "puzzle"),
    os.path.join("src", "vata"),
    os.path.join("src", "logic"),
    os.path.join("src", "server"),
)

# A lexical poll of the execution governor inside a loop body. Fire() is the
# unamortized variant used once per coarse round; IsCancelled/Abandoned are
# the raw token polls of the fan-out protocols.
CHECKPOINT_CALL_RE = re.compile(
    r"\.Tick\s*\(|\.Fire\s*\(|->Check\s*\(|\.Check\s*\(|"
    r"IsCancelled\s*\(|\.Abandoned\s*\(")

DOTTED_NAME_RE = re.compile(r"[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+\Z")
SUPPRESS_RE = re.compile(
    r"fo2dt-lint:\s*allow\(\s*([a-z-]+)\s*(?:,\s*([^)]*))?\)")
NAMES_CONST_RE = re.compile(r"\bnames::(k[A-Za-z0-9]+)\b")
RAW_RAND_RE = re.compile(
    r"\b(?:std::)?s?rand\s*\(|std::random_device|std::mt19937")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
ORDERED_CONTAINER_RE = re.compile(
    r"\bstd\s*::\s*(set|map|multiset|multimap)\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def sort_key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """A C++ source file with comments stripped but line structure kept.

    `code` has comment bodies and the *contents* of string/char literals
    blanked with spaces (the quotes remain), so structural scans can't be
    fooled by either; `strings` records every string literal with its line;
    `suppressions` maps line -> list of (rule, reason, ok) parsed from
    fo2dt-lint comments before blanking.
    """

    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.lines = text.split("\n")
        self.strings = []        # (line_no, value)
        self.suppressions = {}   # line_no -> [(rule, reason_ok)]
        self.code = self._scan()

    def _record_suppression(self, comment, line_no):
        for m in SUPPRESS_RE.finditer(comment):
            rule, reason = m.group(1), (m.group(2) or "").strip()
            self.suppressions.setdefault(line_no, []).append((rule, reason))

    def _scan(self):
        out = []
        text = self.text
        i, n = 0, len(text)
        line = 1
        while i < n:
            c = text[i]
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                j = text.find("\n", i)
                j = n if j == -1 else j
                self._record_suppression(text[i:j], line)
                out.append(" " * (j - i))
                i = j
            elif c == "/" and i + 1 < n and text[i + 1] == "*":
                j = text.find("*/", i + 2)
                j = n - 2 if j == -1 else j
                comment = text[i:j + 2]
                self._record_suppression(comment, line)
                for ch in comment:
                    out.append("\n" if ch == "\n" else " ")
                line += comment.count("\n")
                i = j + 2
            elif c == '"':
                j = i + 1
                buf = []
                while j < n and text[j] != '"':
                    if text[j] == "\\":
                        buf.append(text[j:j + 2])
                        j += 2
                    else:
                        buf.append(text[j])
                        j += 1
                value = "".join(buf)
                self.strings.append((line, value))
                out.append('"' + " " * (j - i - 1) + '"')
                line += text.count("\n", i, min(j + 1, n))
                i = j + 1
            elif c == "'":
                j = i + 1
                while j < n and text[j] != "'":
                    j += 2 if text[j] == "\\" else 1
                out.append("'" + " " * (j - i - 1) + "'")
                i = j + 1
            else:
                out.append(c)
                if c == "\n":
                    line += 1
                i += 1
        return "".join(out)

    def line_of_offset(self, offset):
        return self.code.count("\n", 0, offset) + 1


class Linter:
    def __init__(self, root, registry):
        self.root = root
        self.registry = registry
        self.findings = []
        self.used_suppressions = set()  # (path, line_no, rule)
        # Every registered dotted name, and the constant names the generated
        # header derives from them.
        self.registered_values = set()
        self.constants = {}  # constant name -> (category, value)
        for category, key, prefix in (
                ("module", "modules", "kMod"),
                ("span", "spans", "kSpan"),
                ("failpoint", "failpoints", "kFp"),
                ("metric", "metric_keys", "kMetric"),
                ("facade", "facades", "kFacade"),
                ("log_field", "log_fields", "kLogField"),
                ("capture_mode", "capture_modes", "kCaptureMode"),
                ("bundle_file", "bundle_files", "kBundleFile")):
            for entry in registry.get(key, []):
                value = entry["name"]
                self.registered_values.add(value)
                self.constants[prefix + _camel(value)] = (category, value)
        for entry in registry.get("lock_ranks", {}).get("ranks", []):
            value = entry["name"]
            self.registered_values.add(value)
            self.constants["kLock" + _camel(value)] = ("lock_rank", value)
        self.failpoint_constants = {
            c for c, (cat, _) in self.constants.items() if cat == "failpoint"}
        oc = registry.get("ordered_containers", {})
        self.flat_core_dirs = tuple(
            d.replace("/", os.sep) for d in oc.get("hot_dirs", []))
        self.ordered_allowlist = {
            e["path"].replace("/", os.sep) for e in oc.get("allowlist", [])}

    # -- suppression protocol ------------------------------------------------

    def suppressed(self, sf, line_no, rule, aliases=()):
        accepted = (rule,) + tuple(aliases)
        for probe in (line_no, line_no - 1):
            for srule, _reason in sf.suppressions.get(probe, []):
                if srule in accepted:
                    self.used_suppressions.add((sf.path, probe, srule))
                    return True
        return False

    def report(self, sf, line_no, rule, message, aliases=()):
        """Records a finding unless suppressed. `aliases` are additional rule
        names accepted in an allow() for this finding — used by deep rules
        that supersede a shallow rule (checkpoint-reachability honors the
        existing allow(no-checkpoint, ...) comments)."""
        if not self.suppressed(sf, line_no, rule, aliases):
            self.findings.append(Finding(sf.path, line_no, rule, message))

    def check_suppression_comments(self, sf):
        for line_no, entries in sf.suppressions.items():
            for rule, reason in entries:
                if rule not in RULES:
                    self.findings.append(Finding(
                        sf.path, line_no, "bad-suppression",
                        f"suppression names unknown rule '{rule}'"))
                elif not reason:
                    self.findings.append(Finding(
                        sf.path, line_no, "bad-suppression",
                        f"allow({rule}, ...) needs a justification — state "
                        "why the invariant does not apply here"))

    # -- rule: no-checkpoint -------------------------------------------------

    def check_checkpoints(self, sf, reachability=None):
        """Shallow mode (reachability=None): the poll must be lexically inside
        the loop body. Deep mode: `reachability` is a deep_lint.Reachability
        and a loop is also clean when its body calls a function from whose
        body a governor poll is reachable; findings report as
        checkpoint-reachability (accepting allow(no-checkpoint) comments)."""
        if not sf.path.endswith(".cc"):
            return
        if not any(d + os.sep in sf.path or sf.path.startswith(d)
                   for d in HOT_MODULE_DIRS):
            return
        code = sf.code
        for m in re.finditer(r"\b(while|do|for)\b", code):
            kw = m.group(1)
            line_no = sf.line_of_offset(m.start())
            if kw == "for":
                header = _matched_parens(code, m.end())
                if header is None or re.sub(r"\s", "", header[0]) != "(;;)":
                    continue  # counted / range for: bounded by construction
                body_start = header[1]
            elif kw == "while":
                header = _matched_parens(code, m.end())
                if header is None:
                    continue
                # `} while (...)` tail of a do-loop: already handled at `do`.
                prev = code[:m.start()].rstrip()
                if prev.endswith("}"):
                    continue
                body_start = header[1]
            else:  # do
                body_start = m.end()
            body = _loop_body(code, body_start)
            if body is None:
                continue
            if CHECKPOINT_CALL_RE.search(body):
                continue
            loop_desc = {"while": "while loop", "do": "do-while loop",
                         "for": "for(;;) loop"}[kw]
            if reachability is not None:
                if reachability.body_reaches_poll(body):
                    continue
                self.report(
                    sf, line_no, "checkpoint-reachability",
                    f"unbounded {loop_desc} in hot module neither polls the "
                    "governor nor calls any function from which a poll is "
                    "reachable through the call graph; deadlines cannot "
                    "fire here",
                    aliases=("no-checkpoint",))
                continue
            self.report(
                sf, line_no, "no-checkpoint",
                f"unbounded {loop_desc} in hot module has no governor poll "
                "(ExecCheckpoint Tick/Fire, ExecutionContext::Check, or a "
                "token IsCancelled/Abandoned) in its body; deadlines cannot "
                "fire here")

    # -- rule: unregistered-name / unknown-constant --------------------------

    def check_dotted_literals(self, sf):
        if sf.path.endswith(os.path.join("common", "registry_names.h")):
            return
        for line_no, value in sf.strings:
            if not DOTTED_NAME_RE.match(value):
                continue
            if sf.lines[line_no - 1].lstrip().startswith("#include"):
                continue  # quoted include paths are not registry names
            if value in self.registered_values:
                self.report(
                    sf, line_no, "unregistered-name",
                    f'inline literal "{value}" duplicates a registered name; '
                    "use the names:: constant from common/registry_names.h")
            else:
                self.report(
                    sf, line_no, "unregistered-name",
                    f'dotted name literal "{value}" is not in tools/lint/'
                    "registry.json; register it and use its names:: constant")

    def check_constants_exist(self, sf):
        for m in NAMES_CONST_RE.finditer(sf.code):
            if m.group(1) not in self.constants and \
                    not m.group(1).startswith(("kAll", "kNum", "kPhase",
                                               "kBench")):
                line_no = sf.line_of_offset(m.start())
                self.report(
                    sf, line_no, "unknown-constant",
                    f"names::{m.group(1)} is not defined by the registry; "
                    "add it to tools/lint/registry.json and re-run "
                    "gen_registry.py")

    # -- rule: unregistered-failpoint ----------------------------------------

    def check_failpoints(self, sf):
        for m in re.finditer(r"\bFO2DT_FAILPOINT\s*\(", sf.code):
            if "#define" in sf.code[sf.code.rfind("\n", 0, m.start()) + 1:
                                    m.start()]:
                continue  # the macro's own definition in failpoint.h
            line_no = sf.line_of_offset(m.start())
            args = _matched_parens(sf.code, m.end() - 1)
            if args is None:
                continue
            first = args[0][1:-1].split(",")[0].strip()
            if first.startswith('"'):
                self.report(
                    sf, line_no, "unregistered-failpoint",
                    "FO2DT_FAILPOINT site names its failpoint with an inline "
                    "literal; use the names::kFp... constant so the site is "
                    "registered")
            else:
                cm = re.match(r"(?:names::)?(kFp[A-Za-z0-9]+)\Z", first)
                if cm is None or cm.group(1) not in self.failpoint_constants:
                    self.report(
                        sf, line_no, "unregistered-failpoint",
                        f"FO2DT_FAILPOINT site '{first}' does not reference a "
                        "registered names::kFp... failpoint constant")

    # -- rule: header-hygiene ------------------------------------------------

    def check_header_hygiene(self, sf):
        if not sf.path.endswith(".h"):
            return
        if "#pragma once" not in sf.text:
            self.report(
                sf, 1, "header-hygiene",
                "header lacks `#pragma once` (project headers use it instead "
                "of include guards)")
        for i, line in enumerate(sf.code.split("\n"), start=1):
            if USING_NAMESPACE_RE.search(line):
                self.report(
                    sf, i, "header-hygiene",
                    "`using namespace` in a header leaks the namespace into "
                    "every includer")

    # -- rule: no-raw-rand ---------------------------------------------------

    def check_raw_rand(self, sf):
        for m in RAW_RAND_RE.finditer(sf.code):
            line_no = sf.line_of_offset(m.start())
            self.report(
                sf, line_no, "no-raw-rand",
                "raw C/std randomness is banned; draw from the seeded, "
                "thread-confined RandomSource in common/random.h (use "
                "Split() for per-thread streams)")

    # -- rule: cache-metrics -------------------------------------------------

    CACHE_LOOKUP_RE = re.compile(r"(?:\.|->)\s*(Lookup|LookupSub)\s*\(")

    def check_cache_metrics(self, sf):
        """Every solve-cache lookup site must pass registered cache hit and
        miss metric constants (names::kMetricCache...), so the hit/miss
        disposition of every lookup reaches the MetricsRegistry. The cache
        implementation itself (which consumes the constants) is exempt."""
        if sf.path.endswith(os.path.join("common", "solve_cache.cc")) or \
                sf.path.endswith(os.path.join("common", "solve_cache.h")):
            return
        for m in self.CACHE_LOOKUP_RE.finditer(sf.code):
            line_no = sf.line_of_offset(m.start())
            args = _matched_parens(sf.code, m.end() - 1)
            if args is None:
                continue
            cache_consts = [
                c for c in NAMES_CONST_RE.findall(args[0])
                if self.constants.get(c, ("", ""))[0] == "metric"
                and self.constants[c][1].startswith("cache.")]
            if len(cache_consts) < 2:
                self.report(
                    sf, line_no, "cache-metrics",
                    f"cache {m.group(1)}() site does not pass registered hit "
                    "and miss metric constants (names::kMetricCache...); "
                    "every cache lookup must record its disposition")

    # -- rule: histogram-metrics ---------------------------------------------

    # A named Histogram variable/member with its initializer — paren or brace
    # form. The mandatory identifier between the type and the delimiter keeps
    # HistogramSnapshot, `Histogram&`/`Histogram*` parameters, and the class
    # definition itself out.
    HISTOGRAM_DECL_RE = re.compile(r"\bHistogram\s+\w+\s*[({]")

    def check_histogram_metrics(self, sf):
        """Every Histogram construction site must name a registered histogram
        metric constant (names::kMetricHist...), so every distribution the
        process records is scrapeable through the MetricsRegistry exposition.
        The Histogram implementation itself is exempt."""
        if sf.path.endswith(os.path.join("common", "metrics.cc")) or \
                sf.path.endswith(os.path.join("common", "metrics.h")):
            return
        for m in self.HISTOGRAM_DECL_RE.finditer(sf.code):
            line_no = sf.line_of_offset(m.start())
            args = _matched_delims(sf.code, m.end() - 1)
            if args is None:
                continue
            hist_consts = [
                c for c in NAMES_CONST_RE.findall(args)
                if self.constants.get(c, ("", ""))[0] == "metric"
                and self.constants[c][1].startswith("hist.")]
            if not hist_consts:
                self.report(
                    sf, line_no, "histogram-metrics",
                    "Histogram construction site does not name a registered "
                    "histogram metric constant (names::kMetricHist...); an "
                    "unregistered series never reaches the exposition")

    # -- rule: timer-memory-scope --------------------------------------------

    TIMER_DECL_RE = re.compile(r"\bScopedPhaseTimer\s+\w+\s*[({]\s*Phase::(k\w+)")
    TIMER_EMPLACE_RE = re.compile(r"\b(\w+)\.emplace\s*\(\s*Phase::(k\w+)")
    OPTIONAL_TIMER_RE = re.compile(r"optional\s*<\s*ScopedPhaseTimer\s*>\s*(\w+)")

    def check_timer_memory_scopes(self, sf):
        """Every phase timer site must open the matching memory scope within
        three lines, so PhaseProfile wall time and mem_peak cover the same
        region. Pointer declarations and emplaces on non-timer optionals are
        not construction sites and are ignored."""
        code = sf.code
        sites = []  # (line_no, phase_constant)
        for m in self.TIMER_DECL_RE.finditer(code):
            sites.append((sf.line_of_offset(m.start()), m.group(1)))
        optional_timers = {m.group(1)
                           for m in self.OPTIONAL_TIMER_RE.finditer(code)}
        for m in self.TIMER_EMPLACE_RE.finditer(code):
            if m.group(1) in optional_timers:
                sites.append((sf.line_of_offset(m.start()), m.group(2)))
        code_lines = code.split("\n")
        for line_no, phase in sites:
            lo = max(0, line_no - 4)
            hi = min(len(code_lines), line_no + 3)
            window = code_lines[lo:hi]
            if any("ScopedPhaseMemory" in ln and "Phase::" + phase in ln
                   for ln in window):
                continue
            self.report(
                sf, line_no, "timer-memory-scope",
                f"ScopedPhaseTimer site for Phase::{phase} opens no matching "
                f"ScopedPhaseMemory scope within 3 lines; the flight "
                "recorder's per-phase memory high-water is blind here")

    # -- rule: no-ordered-containers -----------------------------------------

    def check_ordered_containers(self, sf):
        """std::set/std::map in a flat-core hot module (registry
        ordered_containers.hot_dirs) outside the audited allowlist. Matches
        the blanked code, so mentions inside comments and strings don't
        fire."""
        if not any(sf.path.startswith(d + os.sep) or sf.path == d
                   for d in self.flat_core_dirs):
            return
        if sf.path in self.ordered_allowlist:
            return
        for m in ORDERED_CONTAINER_RE.finditer(sf.code):
            line_no = sf.line_of_offset(m.start())
            self.report(
                sf, line_no, "no-ordered-containers",
                f"std::{m.group(1)} in a flat-core hot module; solve paths "
                "here run on bitsets/CSR/sorted vectors — use those (or "
                "unordered_* for pure membership), or add this file to the "
                "registry ordered_containers allowlist with an audit reason")

    # -- rule: bench-key-mismatch --------------------------------------------

    def check_bench_contract(self, bench_main, run_bench):
        """bench_main.h must emit <prefix><phase><suffix> counters and
        run_bench.sh must assert the same prefix on the committed reports."""
        bc = self.registry["bench_counters"]
        prefix, suffixes = bc["prefix"], bc["suffixes"]
        if bench_main is not None:
            emitted = {v for _, v in bench_main.strings}
            line = next((ln for ln, v in bench_main.strings if v == prefix), 1)
            if prefix not in emitted:
                self.report(
                    bench_main, 1, "bench-key-mismatch",
                    f'bench_main.h never emits the registry counter prefix '
                    f'"{prefix}"; ReportPhaseCounters and tools/lint/'
                    "registry.json disagree")
            for suffix in suffixes:
                if suffix not in emitted:
                    self.report(
                        bench_main, line, "bench-key-mismatch",
                        f'bench_main.h never emits counter suffix "{suffix}" '
                        f"required by the registry grammar "
                        f"({prefix}<phase>{suffix})")
            if "PhaseName(" not in bench_main.code:
                self.report(
                    bench_main, line, "bench-key-mismatch",
                    "bench_main.h must interpolate the registered phase "
                    "names via PhaseName() between the counter prefix and "
                    "suffix")
        if run_bench is not None:
            # The guard in run_bench.sh greps the committed reports for the
            # counter prefix; a renamed prefix must update both sides.
            want = f'"{prefix}'
            if want not in run_bench.text:
                self.report(
                    run_bench, 1, "bench-key-mismatch",
                    f"run_bench.sh does not assert the bench counter prefix "
                    f"'{want}' on the committed BENCH_*.json files")

    # -- unused suppressions -------------------------------------------------

    def check_unused_suppressions(self, files):
        for sf in files:
            for line_no, entries in sf.suppressions.items():
                for rule, reason in entries:
                    if rule not in RULES or not reason:
                        continue  # already flagged as bad-suppression
                    if (sf.path, line_no, rule) not in self.used_suppressions:
                        self.findings.append(Finding(
                            sf.path, line_no, "bad-suppression",
                            f"unused suppression allow({rule}, ...): nothing "
                            "is flagged here — delete it so audited "
                            "suppressions stay meaningful"))


def _camel(dotted):
    return "".join(p[0].upper() + p[1:]
                   for p in dotted.replace(".", "_").split("_") if p)


def _matched_parens(code, start):
    """From code[start...] (skipping whitespace) expects '('; returns
    (paren_text_including_parens, index_after_close) or None."""
    i = start
    n = len(code)
    while i < n and code[i].isspace():
        i += 1
    if i >= n or code[i] != "(":
        return None
    depth = 0
    j = i
    while j < n:
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                return code[i:j + 1], j + 1
        j += 1
    return None


def _matched_delims(code, start):
    """Like _matched_parens, but accepts '(' or '{' — covers both
    initializer forms of a constructor site. Returns the delimited text
    including the delimiters, or None."""
    i = start
    n = len(code)
    while i < n and code[i].isspace():
        i += 1
    if i >= n or code[i] not in "({":
        return None
    open_ch = code[i]
    close_ch = ")" if open_ch == "(" else "}"
    depth = 0
    j = i
    while j < n:
        if code[j] == open_ch:
            depth += 1
        elif code[j] == close_ch:
            depth -= 1
            if depth == 0:
                return code[i:j + 1]
        j += 1
    return None


def _loop_body(code, start):
    """Returns the loop body text starting at `start` (after the while(...)
    header or the `do` keyword): a braced block, or a single statement up to
    the next ';'."""
    i = start
    n = len(code)
    while i < n and code[i].isspace():
        i += 1
    if i >= n:
        return None
    if code[i] == "{":
        depth = 0
        j = i
        while j < n:
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    return code[i:j + 1]
            j += 1
        return None
    j = code.find(";", i)
    return None if j == -1 else code[i:j + 1]


def collect_files(root):
    exts = (".h", ".cc")
    paths = []
    for top in ("src", "bench"):
        base = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(base):
            for f in sorted(filenames):
                if f.endswith(exts):
                    paths.append(os.path.relpath(
                        os.path.join(dirpath, f), root))
    return sorted(paths)


def main():
    parser = argparse.ArgumentParser(
        description="fo2dt domain-invariant static checker")
    parser.add_argument("--root", default=None,
                        help="repo root to scan (default: this script's repo)")
    parser.add_argument("--registry", default=None,
                        help="registry JSON (default: <root>/tools/lint/"
                             "registry.json)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--deep", action="store_true",
                        help="run the AST-grade rules (checkpoint-"
                             "reachability, arena-escape, lock-annotation); "
                             "checkpoint-reachability supersedes the lexical "
                             "no-checkpoint rule")
    parser.add_argument("--frontend", choices=("auto", "internal", "libclang"),
                        default="auto",
                        help="deep-mode frontend: libclang walks the real AST "
                             "via compile_commands.json; internal is the "
                             "dependency-free syntactic frontend; auto "
                             "prefers libclang and falls back (default)")
    parser.add_argument("--compile-db", default=None,
                        help="directory containing compile_commands.json for "
                             "the libclang frontend (default: "
                             "$FO2DT_COMPILE_DB, then <root>/build-lint, "
                             "then <root>/build)")
    args = parser.parse_args()

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    registry_path = args.registry or os.path.join(
        root, "tools", "lint", "registry.json")
    # Fixture trees reuse the real registry unless they carry their own.
    if not os.path.exists(registry_path):
        registry_path = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "registry.json")
    with open(registry_path, "r", encoding="utf-8") as f:
        registry = json.load(f)

    linter = Linter(root, registry)
    files = []
    for rel in collect_files(root):
        with open(os.path.join(root, rel), "r", encoding="utf-8") as f:
            files.append(SourceFile(rel, f.read()))

    bench_main = next(
        (sf for sf in files
         if sf.path == os.path.join("bench", "bench_main.h")), None)
    run_bench_path = os.path.join(root, "bench", "run_bench.sh")
    run_bench = None
    if os.path.exists(run_bench_path):
        with open(run_bench_path, "r", encoding="utf-8") as f:
            run_bench = SourceFile(
                os.path.join("bench", "run_bench.sh"), f.read())

    reachability = None
    deep = None
    if args.deep:
        import deep_lint
        deep = deep_lint.DeepAnalysis(
            root, files, frontend=args.frontend, compile_db=args.compile_db,
            checkpoint_call_re=CHECKPOINT_CALL_RE)
        if deep.skipped:
            # --frontend=libclang without python libclang: the ctest maps
            # exit 125 to SKIP so the gate is honest about not running.
            print(deep.skip_reason, file=sys.stderr)
            return 125
        reachability = deep.reachability

    for sf in files:
        linter.check_suppression_comments(sf)
        linter.check_checkpoints(sf, reachability)
        linter.check_dotted_literals(sf)
        linter.check_constants_exist(sf)
        linter.check_failpoints(sf)
        linter.check_header_hygiene(sf)
        linter.check_raw_rand(sf)
        linter.check_cache_metrics(sf)
        linter.check_histogram_metrics(sf)
        linter.check_timer_memory_scopes(sf)
        linter.check_ordered_containers(sf)
    linter.check_bench_contract(bench_main, run_bench)
    if deep is not None:
        deep.check_arena_escape(linter)
        deep.check_lock_annotations(linter)
    linter.check_unused_suppressions(files)

    findings = sorted(linter.findings, key=Finding.sort_key)
    if args.format == "json":
        print(json.dumps([vars(f) for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
        print(f"fo2dt_lint: {len(findings)} finding(s) in {len(files)} files")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
