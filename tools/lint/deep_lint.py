"""Deep (AST-grade) rules for fo2dt_lint: call-graph checkpoint
reachability, arena pointer escape, and lock-annotation coverage.

The shallow linter judges each loop body lexically; this module builds a
whole-program view:

  * a function table (name, location, body text) for every definition in
    the tree, and
  * a name-level call graph over it,

and answers "is a governor poll reachable from here?" by fixpoint over that
graph. Name-level means overloads and same-named functions in different
modules merge into one node — a deliberate over-approximation: it can only
make the checker *accept* a loop (some function of that name polls), never
produce a spurious finding, which is the right bias for a lint gate.

Frontends
---------
Two interchangeable frontends produce the function table:

  libclang   walks the real AST via clang.cindex over compile_commands.json;
             function boundaries and call sites come from the compiler, so
             macro-heavy or token-pasted code is handled exactly.
  internal   a dependency-free syntactic frontend: brace-matching over
             comment/string-blanked sources. It recognizes function
             definitions by their `name(args) ... {` shape and collects
             callees by `identifier(` occurrence. It is what CI uses on
             machines without python libclang, and the fixture goldens are
             recorded against it.

`--frontend=auto` (the default) prefers libclang and silently falls back;
`--frontend=libclang` refuses to fall back and reports a skip (the ctest
maps it to exit 125) so a gate that *requires* the AST frontend is honest
about not having run.

The arena-escape and lock-annotation rules are line/taint-based over the
blanked sources under both frontends — the frontend choice governs function
boundaries and the call graph, which is where syntax-only analysis actually
loses precision.
"""

import json
import os
import re

# C++ keywords and keyword-like tokens that precede a '(' without being
# calls, plus declaration heads the function extractor must not mistake for
# a function name.
_NOT_A_FUNCTION = frozenset((
    "if", "for", "while", "switch", "do", "else", "return", "case",
    "default", "break", "continue", "goto", "sizeof", "alignof", "alignas",
    "decltype", "noexcept", "new", "delete", "throw", "catch", "try",
    "static_assert", "namespace", "class", "struct", "union", "enum",
    "template", "typename", "using", "operator", "co_await", "co_return",
    "co_yield", "and", "or", "not", "assert", "defined",
))

_CALLEE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

# `lhs = ... Allocate(...)` / `... AllocateArray<T>(...)`: the SolveArena
# allocation entry points (common/arena.h).
_ARENA_ALLOC_ASSIGN_RE = re.compile(
    r"\b(\w+)\s*=\s*[^;=]*\bAllocate(?:Array)?\s*[<(]")
_ARENA_ALLOC_RETURN_RE = re.compile(
    r"\breturn\s+[^;]*\bAllocate(?:Array)?\s*[<(]")
_ALIAS_RE = re.compile(r"\b(\w+)\s*=\s*(\w+)\s*[;,)+\-\]]")
_RETURN_ID_RE = re.compile(r"\breturn\s+(\w+)\s*(?:[;+\-]|\[)")
_MEMBER_STORE_RE = re.compile(
    r"(?:\bthis\s*->\s*(\w+)|\b(\w+_))\s*=\s*(\w+)\s*[;,)]")

_MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|inline\s+)*std\s*::\s*mutex\s+\w+")
_ATOMIC_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|inline\s+|constexpr\s+|thread_local\s+)*"
    r"std\s*::\s*atomic\s*<[^;]*>\s+\w+")


class FunctionInfo:
    """One function definition: where it is and what its body says."""

    def __init__(self, name, sf, body_start, body):
        self.name = name
        self.sf = sf
        self.body_start = body_start  # offset of '{' in sf.code
        self.body = body              # blanked body text including braces

    def callees(self):
        return {m.group(1) for m in _CALLEE_RE.finditer(self.body)
                if m.group(1) not in _NOT_A_FUNCTION}


class Reachability:
    """Answers: does this loop body call (directly or transitively) a
    function whose body polls the execution governor?"""

    def __init__(self, functions, checkpoint_call_re):
        self._checkpoint_call_re = checkpoint_call_re
        calls = {}    # name -> set of callee names
        polling = set()
        for fi in functions:
            calls.setdefault(fi.name, set()).update(fi.callees())
            if checkpoint_call_re.search(fi.body):
                polling.add(fi.name)
        # Fixpoint: a function polls if any callee polls. The graph is
        # small (a few hundred nodes); iterate until stable.
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                if name not in polling and callees & polling:
                    polling.add(name)
                    changed = True
        self.polling = polling

    def body_reaches_poll(self, body):
        callees = {m.group(1) for m in _CALLEE_RE.finditer(body)
                   if m.group(1) not in _NOT_A_FUNCTION}
        return bool(callees & self.polling)


def _extract_functions(sf):
    """Syntactic function-definition scan over blanked code.

    A definition is an opening brace whose preceding chunk (back to the
    previous ';', '{' or '}') looks like `... name(args) [const|noexcept|
    : init-list ...]` with `name` not a control keyword. Lambdas are left
    inside their enclosing function's body (their '(' follows ']'), which
    is what the checkpoint rules want: a poll inside a lambda the loop
    invokes still counts through the call graph only if the lambda is a
    named function — loop bodies themselves are scanned lexically first.
    """
    code = sf.code
    out = []
    for m in re.finditer(r"\{", code):
        start = m.start()
        chunk_begin = max(code.rfind(";", 0, start), code.rfind("{", 0, start),
                          code.rfind("}", 0, start)) + 1
        sig = code[chunk_begin:start]
        paren = sig.find("(")
        if paren < 0:
            continue
        head = sig[:paren].rstrip()
        nm = re.search(r"([A-Za-z_~][\w]*)\s*$", head)
        if nm is None:
            continue
        name = nm.group(1).lstrip("~")
        if name in _NOT_A_FUNCTION or not name:
            continue
        # `= [...] (...) {` lambdas and array-subscripted initializers are
        # not definitions; neither is an assignment head.
        if "=" in head:
            continue
        # Require the signature's parens to be balanced before the brace —
        # rules out `while (f(x)) {` matched at an inner position? (No:
        # `while` is keyword-filtered; this guards constructs like
        # `int a[] = {`.)
        if sig.count("(") != sig.count(")"):
            continue
        body = _matched_braces(code, start)
        if body is None:
            continue
        out.append(FunctionInfo(name, sf, start, body))
    return out


def _matched_braces(code, start):
    depth = 0
    for j in range(start, len(code)):
        if code[j] == "{":
            depth += 1
        elif code[j] == "}":
            depth -= 1
            if depth == 0:
                return code[start:j + 1]
    return None


def _resolve_compile_db(root, compile_db):
    candidates = []
    if compile_db:
        candidates.append(compile_db)
    env = os.environ.get("FO2DT_COMPILE_DB")
    if env:
        candidates.append(env)
    candidates.append(os.path.join(root, "build-lint"))
    candidates.append(os.path.join(root, "build"))
    for cand in candidates:
        if os.path.exists(os.path.join(cand, "compile_commands.json")):
            return cand
    return None


def _try_libclang_functions(root, files, compile_db):
    """Function table via clang.cindex. Returns (functions, None) on
    success, (None, reason) when libclang is unusable here."""
    try:
        from clang import cindex  # noqa: F401
    except ImportError:
        return None, ("python libclang (clang.cindex) is not installed; "
                      "deep lint libclang frontend unavailable")
    db_dir = _resolve_compile_db(root, compile_db)
    if db_dir is None:
        return None, ("no compile_commands.json found (looked at "
                      "--compile-db, $FO2DT_COMPILE_DB, build-lint, build); "
                      "configure a preset first")
    try:
        index = cindex.Index.create()
        db = cindex.CompilationDatabase.fromDirectory(db_dir)
    except cindex.LibclangError as e:
        return None, f"libclang shared library not loadable: {e}"

    by_path = {os.path.join(root, sf.path): sf for sf in files}
    def_kinds = (cindex.CursorKind.FUNCTION_DECL,
                 cindex.CursorKind.CXX_METHOD,
                 cindex.CursorKind.CONSTRUCTOR,
                 cindex.CursorKind.DESTRUCTOR,
                 cindex.CursorKind.FUNCTION_TEMPLATE)
    functions = []
    for abs_path, sf in sorted(by_path.items()):
        if not abs_path.endswith(".cc"):
            continue
        commands = db.getCompileCommands(abs_path)
        args = []
        if commands:
            # Drop the compiler argv[0] and the input/output file arguments;
            # cindex supplies the path separately.
            raw = list(commands[0].arguments)[1:]
            skip_next = False
            for a in raw:
                if skip_next:
                    skip_next = False
                    continue
                if a in ("-o", "-c"):
                    skip_next = a == "-o"
                    continue
                if a == abs_path:
                    continue
                args.append(a)
        try:
            tu = index.parse(abs_path, args=args)
        except cindex.TranslationUnitLoadError:
            continue

        def visit(cursor):
            for child in cursor.get_children():
                if child.location.file is None or \
                        child.location.file.name != abs_path:
                    continue
                if child.kind in def_kinds and child.is_definition():
                    ext = child.extent
                    # Slice the *blanked* source so downstream regex rules
                    # see the same text shape as the internal frontend.
                    start = ext.start.offset
                    body_open = sf.code.find("{", start, ext.end.offset)
                    if body_open >= 0:
                        functions.append(FunctionInfo(
                            child.spelling, sf, body_open,
                            sf.code[body_open:ext.end.offset]))
                visit(child)

        visit(tu.cursor)
    return functions, None


class DeepAnalysis:
    """Builds the function table + reachability and hosts the two deep
    rules that are not loop-centric (arena-escape, lock-annotation)."""

    def __init__(self, root, files, frontend, compile_db, checkpoint_call_re):
        self.root = root
        self.files = files
        self.skipped = False
        self.skip_reason = ""
        self.frontend_used = "internal"

        functions = None
        if frontend in ("auto", "libclang"):
            functions, reason = _try_libclang_functions(
                root, files, compile_db)
            if functions is None:
                if frontend == "libclang":
                    self.skipped = True
                    self.skip_reason = f"fo2dt_lint --deep: SKIP: {reason}"
                    return
            else:
                self.frontend_used = "libclang"
        if functions is None:
            functions = []
            for sf in files:
                functions.extend(_extract_functions(sf))
        self.functions = functions
        self.reachability = Reachability(functions, checkpoint_call_re)

    # -- rule: arena-escape --------------------------------------------------

    # The allocator's own implementation derives and stores raw block
    # pointers by design.
    _ARENA_IMPL = (os.path.join("common", "arena.h"),
                   os.path.join("common", "arena.cc"))

    def check_arena_escape(self, linter):
        """SolveArena hands out frame-scoped storage: a derived pointer that
        is returned or stored to a field outlives the Frame rewind (dangling)
        and, because arenas are thread-confined, is a data race if another
        thread ever loads it. Taint: variables assigned from Allocate /
        AllocateArray, propagated through simple aliases within a function;
        a tainted `return` or member store is the finding."""
        for fi in self.functions:
            sf = fi.sf
            if sf.path.endswith(self._ARENA_IMPL):
                continue
            body = fi.body
            tainted = {m.group(1)
                       for m in _ARENA_ALLOC_ASSIGN_RE.finditer(body)}
            if tainted:
                # Two alias passes cover chains like q = p; r = q; without a
                # full dataflow fixpoint.
                for _ in range(2):
                    for m in _ALIAS_RE.finditer(body):
                        # Trailing-underscore names are members, not local
                        # aliases — those are the escape, not a propagation.
                        if m.group(2) in tainted and \
                                not m.group(1).endswith("_"):
                            tainted.add(m.group(1))
            for m in _ARENA_ALLOC_RETURN_RE.finditer(body):
                self._escape(linter, sf, fi, m.start(),
                             "returns arena storage directly")
            if not tainted:
                continue
            for m in _RETURN_ID_RE.finditer(body):
                if m.group(1) in tainted:
                    self._escape(linter, sf, fi, m.start(),
                                 f"returns '{m.group(1)}', which points into "
                                 "arena storage")
            for m in _MEMBER_STORE_RE.finditer(body):
                field = m.group(1) or m.group(2)
                if m.group(3) in tainted:
                    self._escape(linter, sf, fi, m.start(),
                                 f"stores arena pointer '{m.group(3)}' to "
                                 f"field '{field}'")

    @staticmethod
    def _escape(linter, sf, fi, body_offset, what):
        line_no = sf.line_of_offset(fi.body_start + body_offset)
        linter.report(
            sf, line_no, "arena-escape",
            f"{what}; SolveArena memory is rewound at Frame exit and "
            "thread-confined — it must not outlive the allocating frame "
            "(copy into owned storage instead)")

    # -- rule: lock-annotation -----------------------------------------------

    _MUTEX_WRAPPER = os.path.join("common", "mutex.h")

    def check_lock_annotations(self, linter):
        """Every concurrency primitive must carry its contract in the
        source: raw std::mutex is banned outside the ranked wrapper (fo2dt::
        Mutex ties each lock to a registry rank and the runtime order
        checker), and every std::atomic declaration needs an adjacent
        `// atomic:` comment (or a capability annotation on the same line)
        stating its ordering protocol. One comment may cover a contiguous
        group of atomic declarations."""
        for sf in self.files:
            if sf.path.endswith(self._MUTEX_WRAPPER):
                continue
            code_lines = sf.code.split("\n")
            for idx, line in enumerate(code_lines):
                if _MUTEX_DECL_RE.match(line):
                    linter.report(
                        sf, idx + 1, "lock-annotation",
                        "raw std::mutex declaration; use fo2dt::Mutex "
                        "(common/mutex.h) so the lock carries a registry "
                        "rank and participates in the runtime order checker")
                elif _ATOMIC_DECL_RE.match(line):
                    if not self._atomic_covered(sf, idx):
                        linter.report(
                            sf, idx + 1, "lock-annotation",
                            "std::atomic declaration without an adjacent "
                            "`// atomic:` contract comment; state the "
                            "memory-ordering protocol (who writes, who "
                            "reads, what orders the accesses)")

    @staticmethod
    def _atomic_covered(sf, idx):
        """The declaration line itself, or a comment block immediately above
        the contiguous run of atomic declarations it belongs to, must say
        `atomic:` (a capability annotation also counts)."""
        line = sf.lines[idx]
        if "atomic:" in line or "FO2DT_GUARDED_BY" in line or \
                "FO2DT_PT_GUARDED_BY" in line:
            return True
        j = idx - 1
        while j >= 0:
            raw = sf.lines[j].strip()
            if "atomic:" in raw and (raw.startswith("//") or
                                     raw.startswith("*") or
                                     raw.startswith("/*")):
                return True
            if raw.startswith(("//", "*", "/*")) or raw.endswith("*/"):
                j -= 1
                continue
            if _ATOMIC_DECL_RE.match(sf.code.split("\n")[j]) or \
                    "std::atomic" in raw:
                # Earlier member of the same contiguous group: keep walking
                # up to the group's comment.
                j -= 1
                continue
            return False
        return False
