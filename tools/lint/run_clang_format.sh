#!/bin/sh
# Check-only formatting gate over the committed .clang-format. Exits 125 —
# which ctest maps to SKIP via SKIP_RETURN_CODE — when clang-format is not
# installed, so the suite stays green on toolchains without LLVM while the
# check still runs wherever the tool exists.
set -eu

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "clang-format not installed; skipping format check" >&2
  exit 125
fi

cd "$ROOT"
# shellcheck disable=SC2046
clang-format --dry-run --Werror \
  $(find src tests bench examples \( -name '*.h' -o -name '*.cc' \) \
      -not -path '*/fixtures/*' | sort)
echo "clang-format: clean"
