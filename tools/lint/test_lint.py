#!/usr/bin/env python3
"""Self-test for the fo2dt lint toolchain (runs as the fo2dt_lint_fixtures
ctest).

1. fixtures/ is a miniature repo tree where every file violates one rule
   class; the linter's text output on it must match expected_findings.txt
   byte for byte, proving each finding class actually fires.
2. Every rule the linter advertises (--list-rules) must appear at least
   once in a golden output (shallow or deep) — a rule that cannot fire is
   dead code.
3. The real tree must scan clean under --deep: the fixtures prove the
   rules detect violations, the clean run proves the tree honors the
   invariants.
4. gen_registry.py must reject malformed registries (shadowed prefix
   order, unknown phase, non-ascending lock ranks), detect drift between
   the JSON and the committed header, and pass --check on the committed
   pair.
5. fixtures_deep/ exercises the three --deep rules (checkpoint-
   reachability through the call graph, arena-escape, lock-annotation)
   against expected_deep_findings.txt, including that a stale
   allow(no-checkpoint) on a loop the call graph proves safe is itself
   reported as unused.
"""

import json
import os
import subprocess
import sys
import tempfile

LINT_DIR = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(LINT_DIR))
PY = sys.executable or "python3"
LINT = os.path.join(LINT_DIR, "fo2dt_lint.py")
GEN = os.path.join(LINT_DIR, "gen_registry.py")

failures = []


def run(args):
    return subprocess.run(args, capture_output=True, text=True)


def check(cond, label, detail=""):
    print(("ok   " if cond else "FAIL ") + label)
    if not cond:
        failures.append(label)
        if detail:
            print(detail)


def main():
    # 1. Golden fixture scan.
    fixtures = os.path.join(LINT_DIR, "fixtures")
    with open(os.path.join(LINT_DIR, "expected_findings.txt"),
              encoding="utf-8") as f:
        golden = f.read()
    r = run([PY, LINT, "--root", fixtures])
    check(r.returncode == 1, "fixture scan exits 1", r.stdout + r.stderr)
    check(r.stdout == golden,
          "fixture findings match expected_findings.txt",
          "---- got ----\n" + r.stdout + "---- want ----\n" + golden)

    # 1b. Deep-fixture scan: the AST-grade rules against their golden. The
    # internal frontend is pinned so the golden is reproducible on machines
    # with and without python libclang.
    fixtures_deep = os.path.join(LINT_DIR, "fixtures_deep")
    with open(os.path.join(LINT_DIR, "expected_deep_findings.txt"),
              encoding="utf-8") as f:
        deep_golden = f.read()
    r = run([PY, LINT, "--root", fixtures_deep, "--deep",
             "--frontend=internal"])
    check(r.returncode == 1, "deep fixture scan exits 1",
          r.stdout + r.stderr)
    check(r.stdout == deep_golden,
          "deep findings match expected_deep_findings.txt",
          "---- got ----\n" + r.stdout + "---- want ----\n" + deep_golden)
    for rule in ("checkpoint-reachability", "arena-escape",
                 "lock-annotation"):
        check(f"[{rule}]" in deep_golden,
              f"deep fixtures exercise rule '{rule}'")
    check("unused suppression allow(no-checkpoint" in deep_golden,
          "a stale allow() on a call-graph-proven loop is itself a finding")

    # 1c. Forcing the libclang frontend on a machine without python libclang
    # must refuse to silently fall back: exit 125 (ctest SKIP), not a pass.
    try:
        import clang.cindex  # noqa: F401
        have_libclang = True
    except ImportError:
        have_libclang = False
    if not have_libclang:
        r = run([PY, LINT, "--root", fixtures_deep, "--deep",
                 "--frontend=libclang"])
        check(r.returncode == 125,
              "--frontend=libclang exits 125 when clang.cindex is absent",
              f"exit {r.returncode}: " + r.stdout + r.stderr)

    # 2. Every advertised rule fires somewhere in the fixtures.
    rules = run([PY, LINT, "--list-rules"]).stdout.split()
    check(len(rules) >= 8, "linter advertises its rule set")
    for rule in rules:
        check(f"[{rule}]" in golden + deep_golden,
              f"fixtures exercise rule '{rule}'")

    # 3. The real tree is clean under the full deep gate.
    r = run([PY, LINT, "--root", REPO, "--deep", "--frontend=auto"])
    check(r.returncode == 0, "real tree is deep-lint-clean",
          r.stdout + r.stderr)

    # 4a. Committed registry/header pair is in sync.
    r = run([PY, GEN, "--check"])
    check(r.returncode == 0, "registry_names.h matches registry.json",
          r.stdout + r.stderr)

    # 4b. The generator rejects malformed registries and detects drift.
    with open(os.path.join(LINT_DIR, "registry.json"), encoding="utf-8") as f:
        reg = json.load(f)

    def expect_check_fails(mutate, label):
        bad = json.loads(json.dumps(reg))
        mutate(bad)
        fd, path = tempfile.mkstemp(suffix=".json", text=True)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as tf:
                json.dump(bad, tf)
            r = run([PY, GEN, "--registry", path, "--check"])
            check(r.returncode != 0, label, r.stdout)
        finally:
            os.unlink(path)

    expect_check_fails(
        lambda b: b["phase_prefixes"].reverse(),
        "generator rejects a shadowed prefix ordering")
    expect_check_fails(
        lambda b: b["modules"][0].update(phase="no_such_phase"),
        "generator rejects a module with an unknown phase")
    expect_check_fails(
        lambda b: b["modules"][0].update(name="frontend.renamed"),
        "generator --check detects drift after a registry edit")
    expect_check_fails(
        lambda b: b["lock_ranks"]["ranks"][0].update(rank=999),
        "generator rejects a lock hierarchy that is not strictly ascending")
    expect_check_fails(
        lambda b: b["lock_ranks"]["ranks"][1].update(
            name=b["lock_ranks"]["ranks"][0]["name"]),
        "generator rejects duplicate lock rank names")
    expect_check_fails(
        lambda b: b["lock_ranks"]["ranks"][0].update(doc="edited"),
        "generator --check detects lock_ranks drift against the header")

    print(f"test_lint: {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
