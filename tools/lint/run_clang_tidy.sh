#!/bin/sh
# clang-tidy gate over the committed .clang-tidy, driven from a compile
# database (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON; the lint
# preset does). Exits 125 — ctest SKIP via SKIP_RETURN_CODE — when either
# clang-tidy or the database is unavailable, so machines without LLVM skip
# cleanly instead of failing.
set -eu

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD="${1:-$ROOT/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping tidy check" >&2
  exit 125
fi
if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "no compile database at $BUILD/compile_commands.json;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (skipping)" >&2
  exit 125
fi

cd "$ROOT"
status=0
for f in $(find src -name '*.cc' | sort); do
  clang-tidy --quiet -p "$BUILD" "$f" || status=1
done
[ "$status" -eq 0 ] && echo "clang-tidy: clean"
exit "$status"
