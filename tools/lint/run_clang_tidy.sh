#!/bin/sh
# clang-tidy gate over the committed .clang-tidy, driven from a compile
# database (every preset exports one; CMAKE_EXPORT_COMPILE_COMMANDS is on
# globally). Exits 125 — ctest SKIP via SKIP_RETURN_CODE — when either
# clang-tidy or the database is unavailable, so machines without LLVM skip
# cleanly instead of failing.
#
# Database resolution matches deep_lint.py (`fo2dt_lint.py --deep`) so both
# tools analyze against the same build: explicit argument, then
# $FO2DT_COMPILE_DB, then build-lint, then build.
set -eu

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping tidy check" >&2
  exit 125
fi

BUILD=""
for cand in "${1:-}" "${FO2DT_COMPILE_DB:-}" "$ROOT/build-lint" "$ROOT/build"; do
  if [ -n "$cand" ] && [ -f "$cand/compile_commands.json" ]; then
    BUILD="$cand"
    break
  fi
done
if [ -z "$BUILD" ]; then
  echo "no compile_commands.json (looked at arg, \$FO2DT_COMPILE_DB," \
       "build-lint, build); configure a preset first (skipping)" >&2
  exit 125
fi

cd "$ROOT"
status=0
for f in $(find src -name '*.cc' | sort); do
  clang-tidy --quiet -p "$BUILD" "$f" || status=1
done
[ "$status" -eq 0 ] && echo "clang-tidy: clean"
exit "$status"
