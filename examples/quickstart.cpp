// Quickstart: data trees, zones, FO²(∼,+1) model checking, and bounded
// satisfiability — the core objects of Bojańczyk et al., "Two-Variable Logic
// on Data Trees and XML Reasoning" (PODS 2006).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "datatree/text_io.h"
#include "datatree/zones.h"
#include "frontend/solver.h"
#include "logic/eval.h"
#include "logic/parser.h"

using namespace fo2dt;

int main() {
  // ---- 1. A data tree: every node has a label and a data value. ----------
  Alphabet labels;
  DataTree tree = *ParseDataTree("a:1 (b:1 c:2 (d:2) b:1)", &labels);
  std::printf("tree: %s\n", DataTreeToText(tree, labels).c_str());
  std::printf("%s", DataTreeToPrettyText(tree, labels).c_str());

  // ---- 2. Classes and zones (Figure 1). -----------------------------------
  ZonePartition zones = ComputeZones(tree);
  ClassPartition classes = ComputeClasses(tree);
  std::printf("classes: %zu, zones: %zu\n", classes.num_classes(),
              zones.num_zones());
  for (ZoneId z = 0; z < zones.num_zones(); ++z) {
    std::printf("  zone %u (value %llu): %zu nodes\n", z,
                (unsigned long long)zones.data_value[z],
                zones.members[z].size());
  }

  // ---- 3. FO²(∼,+1) model checking. ---------------------------------------
  // "Every b-node shares its data value with some a-node."
  Formula phi = *ParseFormula(
      "forall x. (b(x) -> exists y. (a(y) & x ~ y))", &labels);
  bool holds = *Evaluator::EvaluateSentence(phi, tree, nullptr);
  std::printf("phi = %s\n  holds: %s\n", phi.ToString(labels).c_str(),
              holds ? "yes" : "no");

  // ---- 4. Bounded-complete satisfiability. --------------------------------
  // "Some two siblings share a value, but no parent shares with a child."
  Formula psi = *ParseFormula(
      "exists x. exists y. (next(x,y) & x ~ y) & "
      "forall x. forall y. (child(x,y) -> !(x ~ y))",
      &labels);
  SolverOptions options;
  options.max_model_nodes = 5;
  SatResult sat = *CheckFo2SatisfiabilityBounded(psi, options);
  std::printf("psi satisfiable: %s\n", SatVerdictToString(sat.verdict));
  if (sat.witness.has_value()) {
    std::printf("  witness: %s\n",
                DataTreeToText(*sat.witness, labels).c_str());
  }
  return 0;
}
