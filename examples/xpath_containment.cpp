// LocalDataXPath static analysis (Section V, Theorem 3): parse data-aware
// XPath queries, evaluate them, translate them to FO²(∼,+1), and decide
// satisfiability / containment with bounded counterexample search.
//
// Build & run:  ./build/examples/xpath_containment

#include <cstdio>

#include "datatree/text_io.h"
#include "logic/eval.h"
#include "xpath/xpath.h"

using namespace fo2dt;

int main() {
  Alphabet labels;

  // ---- 1. A data-aware query with an absolute value join. -----------------
  // Items whose @val matches some reference value.
  XpPath matched =
      *ParseXPath("/Child::item[Self::*/@val = /Child::ref/@val]", &labels);
  XpPath all_items = *ParseXPath("/Child::item", &labels);
  std::printf("p = %s\nq = %s\n", XPathToString(matched, labels).c_str(),
              XPathToString(all_items, labels).c_str());

  // ---- 2. Evaluate on a concrete document. ---------------------------------
  Alphabet doc_labels = labels;
  DataTree doc = *ParseDataTree(
      "r:0 (item:0 (val:7) item:0 (val:8) ref:0 (val:7))", &doc_labels);
  auto hits = *EvaluateXPathFromRoot(doc, matched);
  std::printf("matched items in the sample document: %zu of %zu\n",
              hits.size(), EvaluateXPathFromRoot(doc, all_items)->size());

  // ---- 3. Translate to FO²(∼,+1). -----------------------------------------
  SafetyAssociations assoc = *CheckSafety({&matched, &all_items});
  Formula phi = *TranslateXPathToFo2(matched, assoc);
  std::printf("FO² translation of p:\n  %s\n", phi.ToString(labels).c_str());

  // ---- 4. Containment: p ⊆ q holds, q ⊆ p is refuted. ----------------------
  SolverOptions options;
  options.max_model_nodes = 5;
  SatResult fwd = *CheckXPathContainment(matched, all_items, nullptr, options);
  std::printf("p ⊆ q: %s\n", fwd.verdict == SatVerdict::kSat
                                 ? "refuted"
                                 : "no counterexample (holds in bound)");
  SatResult bwd = *CheckXPathContainment(all_items, matched, nullptr, options);
  std::printf("q ⊆ p: %s\n", bwd.verdict == SatVerdict::kSat
                                 ? "refuted (counterexample below)"
                                 : "no counterexample");
  if (bwd.witness.has_value()) {
    std::printf("  counterexample: %s\n",
                DataTreeToText(*bwd.witness, labels).c_str());
  }

  // ---- 5. The paper's Example 1: a safe relative (in-)equality. ------------
  XpPath example1 = *ParseXPath(
      "/Child::a[not (Self::a/@B = Child::b/@B)]", &labels);
  std::printf("Example-1-style query: %s\n",
              XPathToString(example1, labels).c_str());
  SatResult sat = *CheckXPathSatisfiability(example1, nullptr, options);
  std::printf("satisfiable: %s\n", SatVerdictToString(sat.verdict));
  return 0;
}
