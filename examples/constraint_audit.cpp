// Constraint audit (Section IV): parse the paper's Figure-3 schedule
// document, encode it as a data tree, check unary key / inclusion
// constraints, and run the two decision procedures — bounded implication
// search and the Arenas–Fan–Libkin-style cardinality ILP — against a DTD.
//
// Build & run:  ./build/examples/constraint_audit

#include <cstdio>

#include "constraints/constraints.h"
#include "datatree/text_io.h"
#include "xmlenc/dtd.h"
#include "xmlenc/xml.h"

using namespace fo2dt;

int main() {
  // ---- 1. The paper's example document (Figure 3). ------------------------
  const char* xml = R"(
    <schedule>
      <course ID="5">
        <lecturer faculty="12"></lecturer>
        <building nr="1"></building>
      </course>
      <course ID="7">
        <lecturer faculty="12"></lecturer>
        <building nr="2"></building>
      </course>
    </schedule>)";
  XmlElement doc = *ParseXml(xml);
  Alphabet labels;
  ValueDictionary values;
  DataTree tree = *EncodeXml(doc, &labels, &values);
  std::printf("encoded document (%zu nodes):\n%s", tree.size(),
              DataTreeToPrettyText(tree, labels).c_str());

  // ---- 2. Document-level constraint checks. -------------------------------
  Symbol course = labels.Find("course");
  Symbol id = labels.Find("ID");
  Symbol lecturer = labels.Find("lecturer");
  Symbol faculty = labels.Find("faculty");
  UnaryKey key{course, id};
  std::printf("key course[@ID]: %s\n",
              DocumentSatisfiesKey(tree, key) ? "holds" : "violated");

  // ---- 3. Implication relative to a schema (bounded counterexamples). -----
  ConstraintSet premises;  // no premises: the key is not implied
  TreeAutomaton universal = TreeAutomaton::Universal(labels.size());
  SolverOptions options;
  options.max_model_nodes = 5;
  SatResult imp =
      *CheckImplicationBounded(universal, premises, KeyToFo2(key), options);
  std::printf("|= key course[@ID] without premises: %s\n",
              imp.verdict == SatVerdict::kSat ? "refuted (counterexample found)"
                                              : "no counterexample in bound");

  // ---- 4. The [2]-style NP baseline: keys + foreign keys vs a DTD. --------
  Alphabet slim;
  Symbol s_sched = slim.Intern("schedule");
  Symbol s_course = slim.Intern("course");
  Symbol s_lect = slim.Intern("lecturer");
  Symbol s_fac = slim.Intern("faculty");
  Dtd dtd;
  dtd.root = s_sched;
  DtdElement sched{s_sched, *ParseRegex("course, course, lecturer?", &slim), {}};
  DtdElement course_el{s_course, Regex::Epsilon(), {s_fac}};
  DtdElement lect_el{s_lect, Regex::Epsilon(), {s_fac}};
  dtd.elements = {sched, course_el, lect_el};
  TreeAutomaton schema = *DtdToTreeAutomaton(dtd, slim.size());

  ConstraintSet set;
  set.keys.push_back({s_lect, s_fac});
  set.keys.push_back({s_course, s_fac});
  set.inclusions.push_back({s_course, s_fac, s_lect, s_fac});
  SatResult ilp = *CheckKeyForeignKeyConsistencyIlp(schema, set);
  std::printf(
      "DTD forces 2 courses but at most 1 lecturer; keyed FK course.faculty "
      "-> lecturer.faculty is %s\n",
      ilp.verdict == SatVerdict::kUnsat ? "INCONSISTENT (as expected)"
                                        : "consistent");
  (void)lecturer;
  (void)faculty;
  return 0;
}
