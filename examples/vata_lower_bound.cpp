// The Theorem-4 lower bound (Section VI): vector addition tree automata,
// the Figure-4 counter-tree coding, and the FO²(∼,<,+1) conditions that
// data values enforce. This is why deciding FO²(∼,<,+1) would settle the
// long-open emptiness problem of VATA (equivalently, provability in MELL).
//
// Build & run:  ./build/examples/vata_lower_bound

#include <cstdio>

#include "datatree/text_io.h"
#include "logic/eval.h"
#include "vata/vata.h"

using namespace fo2dt;

int main() {
  // A one-counter VATA: leaves produce one token; inner 'a' nodes consume a
  // token from each child and either re-emit one (state q0) or close the
  // balance (accepting state q1).
  VataAutomaton vata;
  vata.num_counters = 1;
  vata.num_states = 2;
  vata.num_labels = 2;  // a = 0, leaf = 1
  vata.accepting = {1};
  vata.leaf_rules.push_back({1, 0, {1}});
  vata.transitions.push_back({0, 0, {1}, 0, {1}, 0, {1}});
  vata.transitions.push_back({0, 0, {1}, 0, {1}, 1, {0}});

  // ---- 1. Bounded emptiness search. ----------------------------------------
  auto witness = FindVataWitnessBounded(vata, 7);
  if (!witness.ok()) {
    std::printf("no accepted tree within the bound\n");
    return 1;
  }
  Alphabet labels;
  labels.Intern("a");
  labels.Intern("leaf");
  std::printf("accepted tree: %s\n",
              DataTreeToText(witness->first, labels).c_str());

  // ---- 2. The Figure-4 counter-tree coding of the run. ---------------------
  CounterTreeAlphabet ct_alpha{vata.num_counters, vata.num_states,
                               vata.num_labels};
  DataTree counter_tree =
      *BuildCounterTree(vata, witness->first, witness->second, ct_alpha);
  Alphabet ct_labels;
  ct_labels.Intern("I0");
  ct_labels.Intern("D0");
  ct_labels.Intern("P0");
  ct_labels.Intern("P1");
  ct_labels.Intern("a");
  ct_labels.Intern("leaf");
  std::printf("counter tree (%zu nodes):\n%s", counter_tree.size(),
              DataTreeToPrettyText(counter_tree, ct_labels).c_str());

  // ---- 3. Conditions (1)-(4) hold — checked by the FO² model checker. ------
  Formula phi = EncodeVataToFo2(vata, ct_alpha);
  bool ok = *Evaluator::EvaluateSentence(phi, counter_tree, nullptr);
  std::printf("counter discipline (Theorem 4, conditions 1-4): %s\n",
              ok ? "satisfied" : "VIOLATED");

  // ---- 4. Corrupting one increment value breaks the discipline. -------------
  DataTree broken = counter_tree;
  for (NodeId v = 0; v < broken.size(); ++v) {
    if (broken.label(v) == ct_alpha.Inc(0)) {
      broken.set_data(v, 424242);
      break;
    }
  }
  bool still_ok = *Evaluator::EvaluateSentence(phi, broken, nullptr);
  std::printf("after corrupting one increment: %s\n",
              still_ok ? "still satisfied (?!)" : "violated, as expected");
  return 0;
}
